//go:build amd64

package speck

import (
	"unsafe"

	"repro/internal/bits"
)

// AVX2 side of EncryptDiffSliced128: the Go wrapper here builds the
// interleaved plane buffer and the assembly kernel in sliced_amd64.s
// runs the rounds. useSpeckAVX2 is a variable so tests can force the
// two-half fallback and check both paths agree on the same machine.

var useSpeckAVX2 = bits.HasAVX2()

// diffPlanes128 is the in-memory plane layout the assembly kernel walks.
// Each [4]uint64 is one YMM-sized bit plane: state planes (x, y) hold
// [a·g0, a·g1, b·g0, b·g1] — δ-partner states a/b of lane groups
// g0/g1 — and key-material planes (rk, l) hold [g0, g1, g0, g1], so a
// schedule-produced round key lines up with the state planes as is.
// x0/y0 and x1/y1 are the ping-pong round buffers; rk ping-pongs the
// current/next round key; l is the schedule's four-slot ring.
type diffPlanes128 struct {
	x0, y0 [16][4]uint64
	x1, y1 [16][4]uint64
	rk     [2][16][4]uint64
	l      [4][16][4]uint64
}

// The assembly addresses the struct by constant byte offsets; pin them.
const (
	_ = uint(unsafe.Offsetof(diffPlanes128{}.y0) - 512)
	_ = uint(unsafe.Offsetof(diffPlanes128{}.x1) - 1024)
	_ = uint(unsafe.Offsetof(diffPlanes128{}.y1) - 1536)
	_ = uint(unsafe.Offsetof(diffPlanes128{}.rk) - 2048)
	_ = uint(unsafe.Offsetof(diffPlanes128{}.l) - 3072)
	_ = uint(5120 - unsafe.Sizeof(diffPlanes128{}))
	_ = uint(unsafe.Sizeof(diffPlanes128{}) - 5120)
)

// scheduleRC[r][bit] is the all-ones mask when bit `bit` of the round
// counter r is set — the branchless plane form of the schedule's ^r,
// broadcast to all four lanes by the kernel.
var scheduleRC = func() (t [Rounds][16]uint64) {
	for r := range t {
		for bit := 0; bit < 16; bit++ {
			t[r][bit] = -(uint64(r) >> bit & 1)
		}
	}
	return
}()

// encryptDiffAVX2 runs n fused round+schedule steps over the plane
// buffer (sliced_amd64.s). The result planes land in x0/y0 when n is
// even and x1/y1 when n is odd.
//
//go:noescape
func encryptDiffAVX2(p *diffPlanes128, n int)

func encryptDiff128Accel(keyRows *[128]uint64, ptRows *[128]uint32, delta Block, n int, out *[128]uint32) bool {
	if !useSpeckAVX2 {
		return false
	}
	var m0, m1 [64]uint64
	copy(m0[:], keyRows[0:64])
	copy(m1[:], keyRows[64:128])
	bits.Transpose64(&m0)
	bits.Transpose64(&m1)
	var mp0, mp1 [32]uint64
	bits.TransposeRows32((*[64]uint32)(ptRows[0:64]), &mp0)
	bits.TransposeRows32((*[64]uint32)(ptRows[64:128]), &mp1)
	return encryptDiffPlanes128Accel(&m0, &m1, &mp0, &mp1, delta, n, out)
}

func encryptDiffPlanes128Accel(m0, m1 *[64]uint64, mp0, mp1 *[32]uint64, delta Block, n int, out *[128]uint32) bool {
	if !useSpeckAVX2 {
		return false
	}
	var p diffPlanes128

	// Key planes per group interleave duplicated [g0, g1, g0, g1].
	// Plane groups follow PackKeyRow: l2 ‖ l1 ‖ l0 ‖ rk0.
	for bit := 0; bit < 16; bit++ {
		p.l[2][bit] = [4]uint64{m0[bit], m1[bit], m0[bit], m1[bit]}
		p.l[1][bit] = [4]uint64{m0[16+bit], m1[16+bit], m0[16+bit], m1[16+bit]}
		p.l[0][bit] = [4]uint64{m0[32+bit], m1[32+bit], m0[32+bit], m1[32+bit]}
		p.rk[0][bit] = [4]uint64{m0[48+bit], m1[48+bit], m0[48+bit], m1[48+bit]}
	}

	// The b state is the a state with the δ planes complemented,
	// exactly as in the 64-lane kernel.
	for bit := 0; bit < 16; bit++ {
		dx := -(uint64(delta.X) >> bit & 1)
		dy := -(uint64(delta.Y) >> bit & 1)
		p.x0[bit] = [4]uint64{mp0[bit], mp1[bit], mp0[bit] ^ dx, mp1[bit] ^ dx}
		p.y0[bit] = [4]uint64{mp0[16+bit], mp1[16+bit], mp0[16+bit] ^ dy, mp1[16+bit] ^ dy}
	}

	encryptDiffAVX2(&p, n)

	rx, ry := &p.x0, &p.y0
	if n&1 == 1 {
		rx, ry = &p.x1, &p.y1
	}
	var od0, od1 [32]uint64
	for bit := 0; bit < 16; bit++ {
		od0[bit] = rx[bit][0] ^ rx[bit][2]
		od1[bit] = rx[bit][1] ^ rx[bit][3]
		od0[16+bit] = ry[bit][0] ^ ry[bit][2]
		od1[16+bit] = ry[bit][1] ^ ry[bit][3]
	}
	bits.UntransposeRows32(&od0, (*[64]uint32)(out[0:64]))
	bits.UntransposeRows32(&od1, (*[64]uint32)(out[64:128]))
	return true
}
