//go:build amd64

package speck

import (
	"testing"

	"repro/internal/bits"
	"repro/internal/prng"
)

// The AVX2 interleaved-plane kernel and the two-half scalar fallback
// are alternative implementations of the same function; on a machine
// that has both, they must be bit-identical.
func TestEncryptDiff128AccelMatchesFallback(t *testing.T) {
	if !useSpeckAVX2 {
		t.Skip("no AVX2 on this machine")
	}
	r := prng.New(0x51c)
	for trial := 0; trial < 64; trial++ {
		var keyRows [128]uint64
		var ptRows [128]uint32
		for l := 0; l < 128; l++ {
			keyRows[l] = r.Uint64()
			ptRows[l] = uint32(r.Uint64())
		}
		n := int(r.Uint64() % (Rounds + 1))
		var accel, fallback [128]uint32
		if !encryptDiff128Accel(&keyRows, &ptRows, GohrDelta, n, &accel) {
			t.Fatal("accel path refused despite AVX2")
		}
		useSpeckAVX2 = false
		EncryptDiffSliced128(&keyRows, &ptRows, GohrDelta, n, &fallback)
		if accel != fallback {
			useSpeckAVX2 = true
			t.Fatalf("trial %d (n=%d): AVX2 kernel diverges from scalar fallback", trial, n)
		}

		// Same check for the plane-form entry's two dispatch arms. The
		// planes are clobbered, so each arm gets a fresh transpose.
		planes := func() (m0, m1 [64]uint64, mp0, mp1 [32]uint64) {
			copy(m0[:], keyRows[0:64])
			copy(m1[:], keyRows[64:128])
			bits.Transpose64(&m0)
			bits.Transpose64(&m1)
			bits.TransposeRows32((*[64]uint32)(ptRows[0:64]), &mp0)
			bits.TransposeRows32((*[64]uint32)(ptRows[64:128]), &mp1)
			return
		}
		var pFall [128]uint32
		m0, m1, mp0, mp1 := planes()
		EncryptDiffPlanes128(&m0, &m1, &mp0, &mp1, GohrDelta, n, &pFall)
		useSpeckAVX2 = true
		var pAccel [128]uint32
		m0, m1, mp0, mp1 = planes()
		EncryptDiffPlanes128(&m0, &m1, &mp0, &mp1, GohrDelta, n, &pAccel)
		if pAccel != accel || pFall != accel {
			t.Fatalf("trial %d (n=%d): plane-form entry diverges from row-form kernel", trial, n)
		}
	}
}
