//go:build amd64

package speck

import (
	"testing"

	"repro/internal/prng"
)

// The AVX2 interleaved-plane kernel and the two-half scalar fallback
// are alternative implementations of the same function; on a machine
// that has both, they must be bit-identical.
func TestEncryptDiff128AccelMatchesFallback(t *testing.T) {
	if !useSpeckAVX2 {
		t.Skip("no AVX2 on this machine")
	}
	r := prng.New(0x51c)
	for trial := 0; trial < 64; trial++ {
		var keyRows [128]uint64
		var ptRows [128]uint32
		for l := 0; l < 128; l++ {
			keyRows[l] = r.Uint64()
			ptRows[l] = uint32(r.Uint64())
		}
		n := int(r.Uint64() % (Rounds + 1))
		var accel, fallback [128]uint32
		if !encryptDiff128Accel(&keyRows, &ptRows, GohrDelta, n, &accel) {
			t.Fatal("accel path refused despite AVX2")
		}
		useSpeckAVX2 = false
		EncryptDiffSliced128(&keyRows, &ptRows, GohrDelta, n, &fallback)
		useSpeckAVX2 = true
		if accel != fallback {
			t.Fatalf("trial %d (n=%d): AVX2 kernel diverges from scalar fallback", trial, n)
		}
	}
}
