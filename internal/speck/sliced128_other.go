//go:build !amd64

package speck

func encryptDiff128Accel(keyRows *[128]uint64, ptRows *[128]uint32, delta Block, n int, out *[128]uint32) bool {
	return false
}

func encryptDiffPlanes128Accel(m0, m1 *[64]uint64, mp0, mp1 *[32]uint64, delta Block, n int, out *[128]uint32) bool {
	return false
}
