//go:build !amd64

package speck

func encryptDiff128Accel(keyRows *[128]uint64, ptRows *[128]uint32, delta Block, n int, out *[128]uint32) bool {
	return false
}
