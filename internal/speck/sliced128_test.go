package speck_test

import (
	"fmt"
	"testing"

	"repro/internal/bits"
	"repro/internal/prng"
	"repro/internal/speck"
	"repro/internal/testkit"
)

// sliced128Case is one 128-lane kernel input: per-lane keys and
// plaintexts plus a shared round count.
type sliced128Case struct {
	Keys   [128][4]uint16
	Blocks [128]speck.Block
	Rounds int
}

// sliced128Cases generates random 128-lane inputs; shrinking lowers the
// round count and zeroes lanes in blocks of 16.
func sliced128Cases() testkit.Gen[sliced128Case] {
	return testkit.Gen[sliced128Case]{
		Name: "128-lane speck case",
		Generate: func(r *prng.Rand) sliced128Case {
			var c sliced128Case
			for l := range c.Keys {
				for w := range c.Keys[l] {
					c.Keys[l][w] = r.Uint16()
				}
				c.Blocks[l] = speck.Block{X: r.Uint16(), Y: r.Uint16()}
			}
			c.Rounds = int(r.Uint64() % (speck.Rounds + 1))
			return c
		},
		Shrink: func(c sliced128Case) []sliced128Case {
			var out []sliced128Case
			if c.Rounds > 0 {
				d := c
				d.Rounds--
				out = append(out, d)
			}
			for l := 0; l < 128; l += 16 {
				if c.Keys[l] != ([4]uint16{}) || c.Blocks[l] != (speck.Block{}) {
					d := c
					d.Keys[l] = [4]uint16{}
					d.Blocks[l] = speck.Block{}
					out = append(out, d)
				}
			}
			return out
		},
		Format: func(c sliced128Case) string {
			return fmt.Sprintf("rounds=%d lane0 key=%04x block=%v", c.Rounds, c.Keys[0], c.Blocks[0])
		},
	}
}

// TestEncryptDiffSliced128MatchesScalar: the ×128 kernel (AVX2 where
// available, two scalar halves otherwise) agrees lane for lane with the
// scalar differential computation for every round count, including 0.
func TestEncryptDiffSliced128MatchesScalar(t *testing.T) {
	testkit.Check(t, "speck-sliced128-vs-scalar", sliced128Cases(), func(c sliced128Case) error {
		var keyRows [128]uint64
		var ptRows [128]uint32
		for l := 0; l < 128; l++ {
			k := c.Keys[l]
			keyRows[l] = speck.PackKeyRow(k[0], k[1], k[2], k[3])
			ptRows[l] = speck.PackBlockRow(c.Blocks[l])
		}
		var out [128]uint32
		speck.EncryptDiffSliced128(&keyRows, &ptRows, speck.GohrDelta, c.Rounds, &out)
		for l := 0; l < 128; l++ {
			cipher := speck.New(c.Keys[l])
			p0 := c.Blocks[l]
			p1 := speck.Block{X: p0.X ^ speck.GohrDelta.X, Y: p0.Y ^ speck.GohrDelta.Y}
			c0 := cipher.EncryptRounds(p0, c.Rounds)
			c1 := cipher.EncryptRounds(p1, c.Rounds)
			want := uint32(c0.X^c1.X) | uint32(c0.Y^c1.Y)<<16
			if out[l] != want {
				return fmt.Errorf("lane %d rounds %d: got %#08x want %#08x", l, c.Rounds, out[l], want)
			}
		}
		return nil
	})
}

// TestEncryptDiffPlanes128 pins the plane-form entry against the
// row-form kernel: transposing the packed rows by hand (per 64-lane
// group) and calling the planes entry must reproduce
// EncryptDiffSliced128 exactly.
func TestEncryptDiffPlanes128(t *testing.T) {
	testkit.Check(t, "speck-sliced128-planes", sliced128Cases(), func(c sliced128Case) error {
		var keyRows [128]uint64
		var ptRows [128]uint32
		for l := 0; l < 128; l++ {
			k := c.Keys[l]
			keyRows[l] = speck.PackKeyRow(k[0], k[1], k[2], k[3])
			ptRows[l] = speck.PackBlockRow(c.Blocks[l])
		}
		var want [128]uint32
		speck.EncryptDiffSliced128(&keyRows, &ptRows, speck.GohrDelta, c.Rounds, &want)
		var m0, m1 [64]uint64
		copy(m0[:], keyRows[0:64])
		copy(m1[:], keyRows[64:128])
		bits.Transpose64(&m0)
		bits.Transpose64(&m1)
		var mp0, mp1 [32]uint64
		bits.TransposeRows32((*[64]uint32)(ptRows[0:64]), &mp0)
		bits.TransposeRows32((*[64]uint32)(ptRows[64:128]), &mp1)
		var got [128]uint32
		speck.EncryptDiffPlanes128(&m0, &m1, &mp0, &mp1, speck.GohrDelta, c.Rounds, &got)
		if got != want {
			return fmt.Errorf("plane-form entry differs from row-form kernel")
		}
		return nil
	})
}

func TestEncryptDiffSliced128RangeCheck(t *testing.T) {
	var keyRows [128]uint64
	var ptRows [128]uint32
	var out [128]uint32
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range round count")
		}
	}()
	speck.EncryptDiffSliced128(&keyRows, &ptRows, speck.GohrDelta, speck.Rounds+1, &out)
}
