//go:build amd64

#include "textflag.h"

// AVX2 differential-sampler kernel: 128 (key, plaintext) lanes at once.
// Every bit plane is one YMM register of four 64-lane words laid out
// [a·g0, a·g1, b·g0, b·g1] — the two δ-partner states a and b of lane
// groups g0 (lanes 0–63) and g1 (lanes 64–127) — so one vector op is
// the scalar kernel's plane op for both states of all 128 lanes.
// Round-key and l-chain planes are duplicated [g0, g1, g0, g1] by the
// Go wrapper, which makes the schedule's output directly usable as the
// encryption round's key operand with no shuffling.
//
// The memory layout is the diffPlanes128 struct (sliced128_amd64.go);
// the byte offsets below are pinned by compile-time asserts there.
//
//	+0    x0   current/next X planes (ping-pong with x1)
//	+512  y0
//	+1024 x1
//	+1536 y1
//	+2048 rk0  current/next round-key planes (ping-pong)
//	+2560 rk1
//	+3072 l0   l-chain ring of four slots: schedule step r reads slot
//	+3584 l1   r&3 and writes slot (r+3)&3, so the rotated-index reads
//	+4096 l2   of a step never race its own writes
//	+4608 l3
//
// Register plan: SI/R9 current/next state base, R10/R11 current/next
// round-key base, R12/R13 l-chain read/write slots, R14 the current
// ·scheduleRC row (round-counter masks), BX l-ring base, CX = n,
// R8 = r. Y8 carries the ripple-carry plane; Y0–Y7 are scratch.

// One bit of an encryption round, fused exactly like the scalar
// kernel's loop body: with j7 = (i+7)&15 and jy = (i−2)&15,
//
//	s    = X[j7] ^ Y[i]            (rotr by renaming)
//	nx   = s ^ carry ^ rk[i]
//	car' = (X[j7] & Y[i]) | (carry & s)
//	ny   = Y[jy] ^ nx              (rotl by renaming)
#define ROUNDBIT(i, j7, jy) \
	VMOVDQU (j7*32)(SI), Y0     \
	VMOVDQU (512+i*32)(SI), Y1  \
	VPXOR   Y0, Y1, Y2          \
	VPAND   Y0, Y1, Y5          \
	VPXOR   Y2, Y8, Y3          \
	VPAND   Y8, Y2, Y6          \
	VMOVDQU (i*32)(R10), Y4     \
	VPOR    Y5, Y6, Y8          \
	VPXOR   Y4, Y3, Y3          \
	VMOVDQU Y3, (i*32)(R9)      \
	VMOVDQU (512+jy*32)(SI), Y7 \
	VPXOR   Y3, Y7, Y7          \
	VMOVDQU Y7, (512+i*32)(R9)

// One bit of a schedule step r (same ripple-carry shape):
//
//	s    = l[j7] ^ rk[i]
//	nl   = s ^ carry ^ rcmask(r, i)
//	car' = (l[j7] & rk[i]) | (carry & s)
//	rk'  = rk[jm2] ^ nl
#define SCHEDBIT(i, j7, jm2) \
	VMOVDQU (j7*32)(R12), Y0    \
	VMOVDQU (i*32)(R10), Y1     \
	VPXOR   Y0, Y1, Y2          \
	VPAND   Y0, Y1, Y5          \
	VPXOR   Y2, Y8, Y3          \
	VPAND   Y8, Y2, Y6          \
	VPBROADCASTQ (i*8)(R14), Y4 \
	VPOR    Y5, Y6, Y8          \
	VPXOR   Y4, Y3, Y3          \
	VMOVDQU Y3, (i*32)(R13)     \
	VMOVDQU (jm2*32)(R10), Y7   \
	VPXOR   Y3, Y7, Y7          \
	VMOVDQU Y7, (i*32)(R11)

// func encryptDiffAVX2(p *diffPlanes128, n int)
TEXT ·encryptDiffAVX2(SB), NOSPLIT, $0-16
	MOVQ p+0(FP), DI
	MOVQ n+8(FP), CX
	LEAQ ·scheduleRC(SB), R14
	MOVQ DI, SI
	LEAQ 1024(DI), R9
	LEAQ 2048(DI), R10
	LEAQ 2560(DI), R11
	LEAQ 3072(DI), BX
	XORQ R8, R8
	CMPQ CX, $0
	JLE  done

round:
	VPXOR Y8, Y8, Y8
	ROUNDBIT(0, 7, 14)
	ROUNDBIT(1, 8, 15)
	ROUNDBIT(2, 9, 0)
	ROUNDBIT(3, 10, 1)
	ROUNDBIT(4, 11, 2)
	ROUNDBIT(5, 12, 3)
	ROUNDBIT(6, 13, 4)
	ROUNDBIT(7, 14, 5)
	ROUNDBIT(8, 15, 6)
	ROUNDBIT(9, 0, 7)
	ROUNDBIT(10, 1, 8)
	ROUNDBIT(11, 2, 9)
	ROUNDBIT(12, 3, 10)
	ROUNDBIT(13, 4, 11)
	ROUNDBIT(14, 5, 12)
	ROUNDBIT(15, 6, 13)
	XCHGQ SI, R9

	// Last round done? The schedule only runs while another round needs
	// its key (round keys are expanded lazily, exactly n of them).
	LEAQ 1(R8), AX
	CMPQ AX, CX
	JGE  done

	// l-ring slots for step r: read r&3, write (r+3)&3.
	MOVQ R8, DX
	ANDQ $3, DX
	SHLQ $9, DX
	LEAQ (BX)(DX*1), R12
	LEAQ 3(R8), DX
	ANDQ $3, DX
	SHLQ $9, DX
	LEAQ (BX)(DX*1), R13

	VPXOR Y8, Y8, Y8
	SCHEDBIT(0, 7, 14)
	SCHEDBIT(1, 8, 15)
	SCHEDBIT(2, 9, 0)
	SCHEDBIT(3, 10, 1)
	SCHEDBIT(4, 11, 2)
	SCHEDBIT(5, 12, 3)
	SCHEDBIT(6, 13, 4)
	SCHEDBIT(7, 14, 5)
	SCHEDBIT(8, 15, 6)
	SCHEDBIT(9, 0, 7)
	SCHEDBIT(10, 1, 8)
	SCHEDBIT(11, 2, 9)
	SCHEDBIT(12, 3, 10)
	SCHEDBIT(13, 4, 11)
	SCHEDBIT(14, 5, 12)
	SCHEDBIT(15, 6, 13)
	XCHGQ R10, R11
	ADDQ  $128, R14
	INCQ  R8
	JMP   round

done:
	VZEROUPPER
	RET
