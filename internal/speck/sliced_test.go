// Tests for the bitsliced ×64 SPECK kernel: every claim of bit-identity
// with the scalar path is checked lane by lane, across random keys and
// every round count, so the dataset fast path can trust Sliced64
// blindly.
package speck_test

import (
	"fmt"
	"testing"

	"repro/internal/prng"
	"repro/internal/speck"
	"repro/internal/testkit"
)

// slicedCase is 64 independent (key, plaintext) lanes plus a round
// count — one full bitsliced kernel invocation.
type slicedCase struct {
	Keys   [64][4]uint16
	Blocks [64]speck.Block
	Rounds int
}

// slicedCases generates random 64-lane inputs. Shrinking zeroes one
// lane at a time so a failure reports the minimal set of live lanes.
func slicedCases() testkit.Gen[slicedCase] {
	return testkit.Gen[slicedCase]{
		Name: "64-lane speck case",
		Generate: func(r *prng.Rand) slicedCase {
			var c slicedCase
			for l := range c.Keys {
				for w := range c.Keys[l] {
					c.Keys[l][w] = r.Uint16()
				}
				c.Blocks[l] = speck.Block{X: r.Uint16(), Y: r.Uint16()}
			}
			c.Rounds = int(r.Uint64() % (speck.Rounds + 1))
			return c
		},
		Shrink: func(c slicedCase) []slicedCase {
			var out []slicedCase
			if c.Rounds > 0 {
				d := c
				d.Rounds--
				out = append(out, d)
			}
			for l := range c.Keys {
				if c.Keys[l] != ([4]uint16{}) || c.Blocks[l] != (speck.Block{}) {
					d := c
					d.Keys[l] = [4]uint16{}
					d.Blocks[l] = speck.Block{}
					out = append(out, d)
				}
			}
			return out
		},
		Format: func(c slicedCase) string {
			return fmt.Sprintf("rounds=%d lane0 key=%04x block=%v", c.Rounds, c.Keys[0], c.Blocks[0])
		},
	}
}

// TestSlicedExpandMatchesScalar: every lane's bitsliced key schedule
// equals the scalar Expand schedule for that lane's key.
func TestSlicedExpandMatchesScalar(t *testing.T) {
	testkit.Check(t, "speck-sliced-expand", slicedCases(), func(c slicedCase) error {
		var s speck.Sliced64
		s.Expand(&c.Keys)
		for r := 0; r < speck.Rounds; r++ {
			planes := s.RoundKeyPlanes(r)
			for l := 0; l < 64; l++ {
				var got uint16
				for bit := 0; bit < 16; bit++ {
					got |= uint16(planes[bit]>>uint(l)&1) << uint(bit)
				}
				want := speck.New(c.Keys[l]).RoundKey(r)
				if got != want {
					return fmt.Errorf("lane %d round key %d: sliced %04x vs scalar %04x", l, r, got, want)
				}
			}
		}
		return nil
	})
}

// TestSlicedEncryptMatchesScalar: the bitsliced encryption is
// lane-for-lane bit-identical to scalar EncryptRounds under each lane's
// own key, for random keys × rounds 0..22.
func TestSlicedEncryptMatchesScalar(t *testing.T) {
	testkit.Check(t, "speck-sliced-vs-scalar", slicedCases(), func(c slicedCase) error {
		var s speck.Sliced64
		s.Expand(&c.Keys)
		st := speck.SliceBlocks(&c.Blocks)
		s.EncryptRounds(&st, c.Rounds)
		var got [64]speck.Block
		st.Unslice(&got)
		var ci speck.Cipher
		for l := 0; l < 64; l++ {
			ci.Expand(c.Keys[l])
			want := ci.EncryptRounds(c.Blocks[l], c.Rounds)
			if got[l] != want {
				return fmt.Errorf("lane %d over %d rounds: sliced %v vs scalar %v", l, c.Rounds, got[l], want)
			}
		}
		return nil
	})
}

// TestSliceRoundTrip: SliceBlocks followed by Unslice restores the
// lanes, and XORConst in plane form equals a per-lane XOR.
func TestSliceRoundTrip(t *testing.T) {
	testkit.Check(t, "speck-slice-roundtrip", slicedCases(), func(c slicedCase) error {
		st := speck.SliceBlocks(&c.Blocks)
		st.XORConst(speck.GohrDelta)
		var got [64]speck.Block
		st.Unslice(&got)
		for l := 0; l < 64; l++ {
			want := c.Blocks[l].XOR(speck.GohrDelta)
			if got[l] != want {
				return fmt.Errorf("lane %d: round trip %v vs %v", l, got[l], want)
			}
		}
		return nil
	})
}

// TestEncryptDiffSliced64: the fused sampler kernel reproduces the
// scalar per-lane output difference Enc(P) ⊕ Enc(P ⊕ Δ) exactly, in
// the X ‖ Y<<16 packed layout the scenario rows use.
func TestEncryptDiffSliced64(t *testing.T) {
	testkit.Check(t, "speck-sliced-diff", slicedCases(), func(c slicedCase) error {
		var keyRows [64]uint64
		var ptRows [64]uint32
		for l := 0; l < 64; l++ {
			k := c.Keys[l]
			keyRows[l] = speck.PackKeyRow(k[0], k[1], k[2], k[3])
			ptRows[l] = speck.PackBlockRow(c.Blocks[l])
		}
		var out [64]uint32
		speck.EncryptDiffSliced64(&keyRows, &ptRows, speck.GohrDelta, c.Rounds, &out)
		var ci speck.Cipher
		for l := 0; l < 64; l++ {
			ci.Expand(c.Keys[l])
			d := ci.EncryptRounds(c.Blocks[l], c.Rounds).XOR(
				ci.EncryptRounds(c.Blocks[l].XOR(speck.GohrDelta), c.Rounds))
			want := uint32(d.X) | uint32(d.Y)<<16
			if out[l] != want {
				return fmt.Errorf("lane %d over %d rounds: diff %08x vs scalar %08x", l, c.Rounds, out[l], want)
			}
		}
		return nil
	})
}

func TestSlicedEncryptRangeCheck(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Sliced64.EncryptRounds accepted 23 rounds")
		}
	}()
	var s speck.Sliced64
	var st speck.SlicedState
	s.EncryptRounds(&st, speck.Rounds+1)
}
