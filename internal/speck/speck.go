// Package speck implements the SPECK-32/64 block cipher of Beaulieu et
// al., the target of Gohr's CRYPTO 2019 neural distinguishers that the
// paper builds on (Section 2.3).
//
// SPECK-32/64 has a 32-bit block (two 16-bit words), a 64-bit key (four
// 16-bit words) and 22 rounds. The round function is the ARX map
//
//	x ← (x ⋙ 7 + y) ⊕ k,   y ← (y ⋘ 2) ⊕ x
//
// Round-reduced encryption is first-class because the distinguishers
// operate on 5–8 round versions. SPECK is a Markov cipher (round keys
// decouple the rounds), which is why Gohr could compute exact all-in-one
// distributions for it; GIMLI cannot be treated this way — that contrast
// is the motivation of the paper.
package speck

import (
	"fmt"

	"repro/internal/bits"
)

// Rounds is the nominal number of rounds of SPECK-32/64.
const Rounds = 22

// KeyWords is the number of 16-bit key words.
const KeyWords = 4

const (
	alpha = 7 // right-rotation in the round function
	beta  = 2 // left-rotation in the round function
)

// Block is a 32-bit SPECK block as the word pair (X, Y); X is the
// left/high word in the Beaulieu et al. convention.
type Block struct {
	X, Y uint16
}

// XOR returns the word-wise XOR of two blocks — the difference used in
// differential cryptanalysis of SPECK.
func (b Block) XOR(o Block) Block { return Block{b.X ^ o.X, b.Y ^ o.Y} }

// Bytes serializes the block as X ‖ Y, each little-endian.
func (b Block) Bytes() []byte {
	return []byte{byte(b.X), byte(b.X >> 8), byte(b.Y), byte(b.Y >> 8)}
}

// BlockFromBytes deserializes Bytes.
func BlockFromBytes(p []byte) Block {
	_ = p[3]
	return Block{
		X: uint16(p[0]) | uint16(p[1])<<8,
		Y: uint16(p[2]) | uint16(p[3])<<8,
	}
}

// Cipher is a SPECK-32/64 instance with an expanded key schedule.
type Cipher struct {
	rk [Rounds]uint16
}

// New expands the 4-word key. Following the design document, the key
// (l2, l1, l0, k0) is passed as key[0] = l2, key[1] = l1, key[2] = l0,
// key[3] = k0.
func New(key [KeyWords]uint16) *Cipher {
	c := &Cipher{}
	c.Expand(key)
	return c
}

// Expand re-keys the cipher in place with the same schedule New
// computes, so hot loops that draw a fresh key per sample can reuse one
// stack-allocated Cipher instead of allocating per key.
func (c *Cipher) Expand(key [KeyWords]uint16) {
	var l [Rounds + KeyWords - 2]uint16
	l[2], l[1], l[0] = key[0], key[1], key[2]
	c.rk[0] = key[3]
	for i := 0; i < Rounds-1; i++ {
		l[i+3] = (c.rk[i] + bits.RotR16(l[i], alpha)) ^ uint16(i)
		c.rk[i+1] = bits.RotL16(c.rk[i], beta) ^ l[i+3]
	}
}

// NewFromBytes expands an 8-byte key laid out as the big-endian words
// l2 ‖ l1 ‖ l0 ‖ k0 (the layout of the design document's test vectors,
// e.g. 1918 1110 0908 0100).
func NewFromBytes(key []byte) (*Cipher, error) {
	if len(key) != 2*KeyWords {
		return nil, fmt.Errorf("speck: key must be %d bytes, got %d", 2*KeyWords, len(key))
	}
	var k [KeyWords]uint16
	for i := 0; i < KeyWords; i++ {
		k[i] = uint16(key[2*i])<<8 | uint16(key[2*i+1])
	}
	return New(k), nil
}

// RoundKey returns round key i, exposed for analysis code.
func (c *Cipher) RoundKey(i int) uint16 { return c.rk[i] }

// roundEnc applies one keyed SPECK round.
func roundEnc(b Block, k uint16) Block {
	x := (bits.RotR16(b.X, alpha) + b.Y) ^ k
	y := bits.RotL16(b.Y, beta) ^ x
	return Block{x, y}
}

// roundDec inverts roundEnc.
func roundDec(b Block, k uint16) Block {
	y := bits.RotR16(b.Y^b.X, beta)
	x := bits.RotL16((b.X^k)-y, alpha)
	return Block{x, y}
}

// Encrypt applies the full 22-round cipher.
func (c *Cipher) Encrypt(b Block) Block { return c.EncryptRounds(b, Rounds) }

// Decrypt inverts Encrypt.
func (c *Cipher) Decrypt(b Block) Block { return c.DecryptRounds(b, Rounds) }

// EncryptRounds applies the first n rounds (round keys 0 … n−1). n must
// be in [0, 22].
func (c *Cipher) EncryptRounds(b Block, n int) Block {
	if n < 0 || n > Rounds {
		panic(fmt.Sprintf("speck: invalid round count %d", n))
	}
	for i := 0; i < n; i++ {
		b = roundEnc(b, c.rk[i])
	}
	return b
}

// EncryptPairRounds encrypts two independent blocks under the same key
// through the first n rounds in one interleaved pass, bit-identical to
// two EncryptRounds calls. The differential sampler always encrypts a
// plaintext pair (P, P ⊕ Δ) per sample, and the two ARX chains are
// independent, so interleaving them doubles the instruction-level
// parallelism of the hot loop.
func (c *Cipher) EncryptPairRounds(a, b Block, n int) (Block, Block) {
	if n < 0 || n > Rounds {
		panic(fmt.Sprintf("speck: invalid round count %d", n))
	}
	ax, ay := a.X, a.Y
	bx, by := b.X, b.Y
	for i := 0; i < n; i++ {
		k := c.rk[i]
		ax = (bits.RotR16(ax, alpha) + ay) ^ k
		bx = (bits.RotR16(bx, alpha) + by) ^ k
		ay = bits.RotL16(ay, beta) ^ ax
		by = bits.RotL16(by, beta) ^ bx
	}
	return Block{ax, ay}, Block{bx, by}
}

// DecryptRounds inverts EncryptRounds.
func (c *Cipher) DecryptRounds(b Block, n int) Block {
	if n < 0 || n > Rounds {
		panic(fmt.Sprintf("speck: invalid round count %d", n))
	}
	for i := n - 1; i >= 0; i-- {
		b = roundDec(b, c.rk[i])
	}
	return b
}

// GohrDelta is the input difference (0x0040, 0x0000) used by Gohr's
// neural distinguishers: a single-bit difference that transitions
// deterministically through the first round.
var GohrDelta = Block{X: 0x0040, Y: 0x0000}
