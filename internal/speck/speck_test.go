package speck

import (
	"testing"
	"testing/quick"

	"repro/internal/prng"
)

// TestKnownAnswer checks the SPECK-32/64 test vector from the design
// document (Beaulieu et al., ePrint 2013/404): key 1918 1110 0908 0100,
// plaintext 6574 694c, ciphertext a868 42f2.
func TestKnownAnswer(t *testing.T) {
	c := New([4]uint16{0x1918, 0x1110, 0x0908, 0x0100})
	got := c.Encrypt(Block{X: 0x6574, Y: 0x694c})
	want := Block{X: 0xa868, Y: 0x42f2}
	if got != want {
		t.Fatalf("Encrypt = %04x %04x, want %04x %04x", got.X, got.Y, want.X, want.Y)
	}
}

func TestNewFromBytesMatchesWordKey(t *testing.T) {
	c1 := New([4]uint16{0x1918, 0x1110, 0x0908, 0x0100})
	c2, err := NewFromBytes([]byte{0x19, 0x18, 0x11, 0x10, 0x09, 0x08, 0x01, 0x00})
	if err != nil {
		t.Fatal(err)
	}
	b := Block{X: 0x1234, Y: 0x5678}
	if c1.Encrypt(b) != c2.Encrypt(b) {
		t.Fatal("byte-key and word-key ciphers disagree")
	}
}

func TestNewFromBytesValidation(t *testing.T) {
	if _, err := NewFromBytes(make([]byte, 7)); err == nil {
		t.Fatal("7-byte key accepted")
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	f := func(k0, k1, k2, k3, x, y uint16) bool {
		c := New([4]uint16{k0, k1, k2, k3})
		b := Block{X: x, Y: y}
		return c.Decrypt(c.Encrypt(b)) == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRoundReducedRoundTrip(t *testing.T) {
	r := prng.New(1)
	c := New([4]uint16{r.Uint16(), r.Uint16(), r.Uint16(), r.Uint16()})
	for n := 0; n <= Rounds; n++ {
		b := Block{X: r.Uint16(), Y: r.Uint16()}
		if got := c.DecryptRounds(c.EncryptRounds(b, n), n); got != b {
			t.Fatalf("round trip failed at %d rounds", n)
		}
	}
}

func TestZeroRoundsIdentity(t *testing.T) {
	c := New([4]uint16{1, 2, 3, 4})
	b := Block{X: 0xdead, Y: 0xbeef}
	if c.EncryptRounds(b, 0) != b {
		t.Fatal("0-round encryption changed the block")
	}
}

func TestRoundCountValidation(t *testing.T) {
	c := New([4]uint16{1, 2, 3, 4})
	for _, n := range []int{-1, 23} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("EncryptRounds(%d) accepted", n)
				}
			}()
			c.EncryptRounds(Block{}, n)
		}()
	}
}

func TestEncryptionIsBijectivePerKey(t *testing.T) {
	// Sampled injectivity: no collisions among 10k random plaintexts.
	r := prng.New(2)
	c := New([4]uint16{r.Uint16(), r.Uint16(), r.Uint16(), r.Uint16()})
	seen := map[Block]Block{}
	for i := 0; i < 10000; i++ {
		p := Block{X: r.Uint16(), Y: r.Uint16()}
		ct := c.Encrypt(p)
		if prev, ok := seen[ct]; ok && prev != p {
			t.Fatalf("collision: %v and %v both encrypt to %v", prev, p, ct)
		}
		seen[ct] = p
	}
}

func TestKeyDependence(t *testing.T) {
	b := Block{X: 0x0102, Y: 0x0304}
	c1 := New([4]uint16{0, 0, 0, 0})
	c2 := New([4]uint16{0, 0, 0, 1})
	if c1.Encrypt(b) == c2.Encrypt(b) {
		t.Fatal("single-bit key change did not change the ciphertext")
	}
}

func TestBlockBytesRoundTrip(t *testing.T) {
	f := func(x, y uint16) bool {
		b := Block{X: x, Y: y}
		return BlockFromBytes(b.Bytes()) == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestXORDifference(t *testing.T) {
	a := Block{X: 0xff00, Y: 0x00ff}
	b := Block{X: 0x0ff0, Y: 0x0ff0}
	d := a.XOR(b)
	if d.X != 0xf0f0 || d.Y != 0x0f0f {
		t.Fatalf("XOR = %04x %04x", d.X, d.Y)
	}
}

// TestGohrDeltaFirstRoundDeterministic verifies the property that makes
// (0x0040, 0) Gohr's difference of choice: it passes the first round
// with probability 1 (the difference sits in the bit position where the
// modular addition cannot produce a carry into the difference).
func TestGohrDeltaFirstRoundDeterministic(t *testing.T) {
	r := prng.New(3)
	c := New([4]uint16{r.Uint16(), r.Uint16(), r.Uint16(), r.Uint16()})
	var first Block
	for i := 0; i < 1000; i++ {
		p := Block{X: r.Uint16(), Y: r.Uint16()}
		d := c.EncryptRounds(p, 1).XOR(c.EncryptRounds(p.XOR(GohrDelta), 1))
		if i == 0 {
			first = d
		} else if d != first {
			t.Fatalf("1-round difference not deterministic: %v vs %v", d, first)
		}
	}
}

// TestLowRoundNonRandomness: at 3 rounds the output difference under
// GohrDelta is visibly non-uniform (few distinct values over many
// samples), which is what the neural distinguisher exploits.
func TestLowRoundNonRandomness(t *testing.T) {
	r := prng.New(4)
	c := New([4]uint16{r.Uint16(), r.Uint16(), r.Uint16(), r.Uint16()})
	distinct := map[Block]bool{}
	const n = 4096
	for i := 0; i < n; i++ {
		p := Block{X: r.Uint16(), Y: r.Uint16()}
		distinct[c.EncryptRounds(p, 3).XOR(c.EncryptRounds(p.XOR(GohrDelta), 3))] = true
	}
	if len(distinct) > n/4 {
		t.Fatalf("3-round differences look too uniform: %d distinct of %d", len(distinct), n)
	}
}

func TestKeyScheduleMatchesManualExpansion(t *testing.T) {
	// Independently expand two steps of the schedule by hand.
	key := [4]uint16{0x1918, 0x1110, 0x0908, 0x0100}
	c := New(key)
	if c.RoundKey(0) != 0x0100 {
		t.Fatalf("rk[0] = %04x, want k0 = 0100", c.RoundKey(0))
	}
	// l[3] = (k0 + ROTR(l0,7)) ^ 0 with l0 = 0x0908.
	l0 := uint16(0x0908)
	k0 := uint16(0x0100)
	l3 := (k0 + (l0>>7 | l0<<9)) ^ 0
	want1 := (k0<<2 | k0>>14) ^ l3
	if c.RoundKey(1) != want1 {
		t.Fatalf("rk[1] = %04x, want %04x", c.RoundKey(1), want1)
	}
}

func BenchmarkEncrypt(b *testing.B) {
	c := New([4]uint16{1, 2, 3, 4})
	blk := Block{X: 0x6574, Y: 0x694c}
	for i := 0; i < b.N; i++ {
		blk = c.Encrypt(blk)
	}
	_ = blk
}

func BenchmarkEncrypt7Rounds(b *testing.B) {
	c := New([4]uint16{1, 2, 3, 4})
	blk := Block{X: 0x6574, Y: 0x694c}
	for i := 0; i < b.N; i++ {
		blk = c.EncryptRounds(blk, 7)
	}
	_ = blk
}
