package sponge_test

import (
	"fmt"

	"repro/internal/bits"
	"repro/internal/sponge"
)

// The one-shot hash of a short message. This output also serves as the
// repository's pinned GIMLI-HASH value (official KATs are unavailable
// offline; see DESIGN.md for the cross-validation strategy).
func ExampleSum256() {
	d := sponge.Sum256([]byte("gimli"))
	fmt.Println(bits.Hex(d[:]))
	// Output:
	// a0d2977e23a8567ee164a572a811fddb542dacdbc460082dac347baf8ef3e1dd
}

// Streaming use via the io.Writer-style interface.
func ExampleHasher() {
	h := sponge.New()
	h.Write([]byte("gim"))
	h.Write([]byte("li"))
	fmt.Println(bits.Hex(h.Sum(nil)))
	// Output:
	// a0d2977e23a8567ee164a572a811fddb542dacdbc460082dac347baf8ef3e1dd
}

// The round-reduced observable of the paper's Section 4 hash
// distinguisher: the 128-bit rate after absorbing one padded block
// through 8 rounds.
func ExampleRateAfterAbsorb() {
	msg := make([]byte, 15)
	rate := sponge.RateAfterAbsorb(msg, 8)
	fmt.Println(len(rate)*8, "bits observed")
	// Output:
	// 128 bits observed
}
