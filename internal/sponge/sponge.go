// Package sponge implements the sponge construction over the GIMLI
// permutation and, on top of it, GIMLI-HASH as specified in the NIST
// LWC submission (Figure 2 of the paper).
//
// The rate is 16 bytes (the top row of the state). Message blocks are
// XORed into the rate and interleaved with permutation calls; the final
// block carries the multi-rate padding (a 0x01 byte after the message)
// plus the domain-separation bit (0x01 XORed into the last byte of the
// state). The 256-bit digest is squeezed as two 16-byte rate outputs
// with a permutation in between.
//
// All permutation calls take a configurable round count so the
// round-reduced variants analyzed by the paper are first-class: the
// distinguisher of Section 4 targets NewHash(r) for r ∈ {6,7,8}.
package sponge

import (
	"fmt"

	"repro/internal/gimli"
)

// Rate is the sponge rate in bytes (128 bits).
const Rate = 16

// DigestSize is the GIMLI-HASH output length in bytes (256 bits).
const DigestSize = 32

// Hasher is a streaming GIMLI-HASH computation. The zero value is not
// usable; construct with NewHash or New.
type Hasher struct {
	state  gimli.State
	buf    [Rate]byte
	n      int // bytes buffered in buf
	rounds int
	done   bool
}

// New returns a full-round (24) GIMLI-HASH instance.
func New() *Hasher { return NewHash(gimli.FullRounds) }

// NewHash returns a GIMLI-HASH instance whose every permutation call is
// reduced to the given number of rounds. rounds must be in [1, 24];
// rounds = 24 is the real hash.
func NewHash(rounds int) *Hasher {
	if rounds < 1 || rounds > gimli.FullRounds {
		panic(fmt.Sprintf("sponge: invalid round count %d", rounds))
	}
	return &Hasher{rounds: rounds}
}

// Reset returns the hasher to its initial state, keeping the configured
// round count.
func (h *Hasher) Reset() {
	h.state = gimli.State{}
	h.buf = [Rate]byte{}
	h.n = 0
	h.done = false
}

// Write absorbs p into the sponge. It never fails; the error return
// satisfies io.Writer. Write panics if called after Sum.
func (h *Hasher) Write(p []byte) (int, error) {
	if h.done {
		panic("sponge: Write after Sum")
	}
	total := len(p)
	for len(p) > 0 {
		c := copy(h.buf[h.n:], p)
		h.n += c
		p = p[c:]
		if h.n == Rate {
			h.state.XORBytes(h.buf[:])
			gimli.PermuteRounds(&h.state, h.rounds)
			h.n = 0
		}
	}
	return total, nil
}

// Sum finalizes the hash and appends the 32-byte digest to b. The
// hasher cannot be written to afterwards (call Reset to reuse it).
// Unlike standard-library hashes, Sum may only be called once because
// the sponge state is consumed by the final padding; this keeps the
// implementation honest about the underlying construction.
func (h *Hasher) Sum(b []byte) []byte {
	if h.done {
		panic("sponge: Sum called twice")
	}
	h.done = true
	// Final (partial, possibly empty) block with multi-rate padding and
	// domain separation.
	h.state.XORBytes(h.buf[:h.n])
	h.state.XORByte(h.n, 0x01)
	h.state.XORByte(gimli.StateBytes-1, 0x01)
	gimli.PermuteRounds(&h.state, h.rounds)

	out := make([]byte, DigestSize)
	copy(out[:Rate], h.state.Bytes()[:Rate])
	gimli.PermuteRounds(&h.state, h.rounds)
	copy(out[Rate:], h.state.Bytes()[:Rate])
	return append(b, out...)
}

// Size returns the digest length in bytes.
func (h *Hasher) Size() int { return DigestSize }

// BlockSize returns the sponge rate in bytes.
func (h *Hasher) BlockSize() int { return Rate }

// Rounds returns the configured per-permutation round count.
func (h *Hasher) Rounds() int { return h.rounds }

// Sum256 computes the full-round GIMLI-HASH of msg.
func Sum256(msg []byte) [DigestSize]byte {
	return SumRounds(msg, gimli.FullRounds)
}

// SumRounds computes the round-reduced GIMLI-HASH of msg with the given
// per-permutation round count.
func SumRounds(msg []byte, rounds int) [DigestSize]byte {
	h := NewHash(rounds)
	h.Write(msg)
	var out [DigestSize]byte
	copy(out[:], h.Sum(nil))
	return out
}

// RateAfterAbsorb runs the absorb phase on a single-block message and
// returns the 128-bit rate part of the state after the (round-reduced)
// final permutation — exactly the value "h" observed by the paper's
// GIMLI-HASH distinguisher (Section 4: the first 128 bits of the
// digest of a one-block message). msg must be at most Rate−1 bytes so
// that message and padding fit a single block.
func RateAfterAbsorb(msg []byte, rounds int) [Rate]byte {
	if len(msg) >= Rate {
		panic("sponge: RateAfterAbsorb requires a single-block message (≤ 15 bytes)")
	}
	var s gimli.State
	s.XORBytes(msg)
	s.XORByte(len(msg), 0x01)
	s.XORByte(gimli.StateBytes-1, 0x01)
	gimli.PermuteRounds(&s, rounds)
	var out [Rate]byte
	copy(out[:], s.Bytes()[:Rate])
	return out
}
