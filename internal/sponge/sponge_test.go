package sponge

import (
	"testing"
	"testing/quick"

	"repro/internal/bits"
	"repro/internal/gimli"
	"repro/internal/prng"
)

func TestStreamingMatchesOneShot(t *testing.T) {
	r := prng.New(1)
	for trial := 0; trial < 100; trial++ {
		msg := r.Bytes(r.Intn(100))
		want := Sum256(msg)

		h := New()
		// Write in random-sized chunks.
		rest := msg
		for len(rest) > 0 {
			n := 1 + r.Intn(len(rest))
			h.Write(rest[:n])
			rest = rest[n:]
		}
		got := h.Sum(nil)
		if !bits.Equal(got, want[:]) {
			t.Fatalf("streaming digest differs for %d-byte message", len(msg))
		}
	}
}

func TestEmptyMessage(t *testing.T) {
	d1 := Sum256(nil)
	d2 := Sum256([]byte{})
	if d1 != d2 {
		t.Fatal("nil and empty messages hash differently")
	}
	// The empty digest must be stable across calls.
	if d1 != Sum256(nil) {
		t.Fatal("hash is not deterministic")
	}
}

func TestDifferentMessagesDifferentDigests(t *testing.T) {
	r := prng.New(2)
	seen := map[[DigestSize]byte][]byte{}
	for i := 0; i < 200; i++ {
		msg := r.Bytes(r.Intn(64))
		d := Sum256(msg)
		if prev, ok := seen[d]; ok && !bits.Equal(prev, msg) {
			t.Fatalf("collision between %x and %x", prev, msg)
		}
		seen[d] = msg
	}
}

func TestPaddingDistinguishesTrailingZeros(t *testing.T) {
	// Multi-rate padding must separate m and m||0x00.
	a := Sum256([]byte{1, 2, 3})
	b := Sum256([]byte{1, 2, 3, 0})
	if a == b {
		t.Fatal("padding failed to separate trailing-zero message")
	}
	// And the block boundary: 15 vs 16 vs 17 bytes.
	m15 := make([]byte, 15)
	m16 := make([]byte, 16)
	m17 := make([]byte, 17)
	d15, d16, d17 := Sum256(m15), Sum256(m16), Sum256(m17)
	if d15 == d16 || d16 == d17 || d15 == d17 {
		t.Fatal("block-boundary messages collide")
	}
}

func TestBlockBoundaryStreaming(t *testing.T) {
	// Exactly-one-block and exactly-two-block messages via both paths.
	for _, n := range []int{15, 16, 17, 31, 32, 33, 48} {
		msg := make([]byte, n)
		for i := range msg {
			msg[i] = byte(i * 7)
		}
		want := Sum256(msg)
		h := New()
		for i := range msg {
			h.Write(msg[i : i+1])
		}
		if got := h.Sum(nil); !bits.Equal(got, want[:]) {
			t.Fatalf("byte-at-a-time digest differs at n=%d", n)
		}
	}
}

func TestRoundsAffectDigest(t *testing.T) {
	msg := []byte("gimli")
	full := SumRounds(msg, 24)
	red := SumRounds(msg, 8)
	if full == red {
		t.Fatal("8-round and 24-round digests collide")
	}
}

func TestNewHashValidation(t *testing.T) {
	for _, rounds := range []int{0, -1, 25} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHash(%d) accepted", rounds)
				}
			}()
			NewHash(rounds)
		}()
	}
}

func TestSumTwicePanics(t *testing.T) {
	h := New()
	h.Write([]byte("x"))
	h.Sum(nil)
	defer func() {
		if recover() == nil {
			t.Fatal("second Sum did not panic")
		}
	}()
	h.Sum(nil)
}

func TestWriteAfterSumPanics(t *testing.T) {
	h := New()
	h.Sum(nil)
	defer func() {
		if recover() == nil {
			t.Fatal("Write after Sum did not panic")
		}
	}()
	h.Write([]byte("x"))
}

func TestReset(t *testing.T) {
	h := New()
	h.Write([]byte("abc"))
	h.Sum(nil)
	h.Reset()
	h.Write([]byte("abc"))
	got := h.Sum(nil)
	want := Sum256([]byte("abc"))
	if !bits.Equal(got, want[:]) {
		t.Fatal("Reset did not restore the initial state")
	}
}

func TestSumAppends(t *testing.T) {
	h := New()
	h.Write([]byte("abc"))
	prefix := []byte{0xde, 0xad}
	out := h.Sum(prefix)
	if len(out) != 2+DigestSize {
		t.Fatalf("Sum output length %d", len(out))
	}
	if out[0] != 0xde || out[1] != 0xad {
		t.Fatal("Sum clobbered the prefix")
	}
}

func TestHashInterfaceSizes(t *testing.T) {
	h := New()
	if h.Size() != 32 || h.BlockSize() != 16 || h.Rounds() != 24 {
		t.Fatalf("Size/BlockSize/Rounds = %d/%d/%d", h.Size(), h.BlockSize(), h.Rounds())
	}
}

func TestRateAfterAbsorbMatchesDigestPrefix(t *testing.T) {
	// For a single-block message, RateAfterAbsorb must equal the first
	// 16 bytes of the digest at the same round count.
	f := func(seed uint64) bool {
		r := prng.New(seed)
		msg := r.Bytes(r.Intn(Rate)) // 0..15 bytes
		rounds := 1 + r.Intn(24)
		rate := RateAfterAbsorb(msg, rounds)
		d := SumRounds(msg, rounds)
		return bits.Equal(rate[:], d[:Rate])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRateAfterAbsorbRejectsFullBlock(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("16-byte message accepted by RateAfterAbsorb")
		}
	}()
	RateAfterAbsorb(make([]byte, Rate), 8)
}

func TestPaperScenarioByteFlipChangesRate(t *testing.T) {
	// The Section 4 setup: two messages differing in byte 4 (or 12) of
	// a single block must produce different rates after 8 rounds.
	msg := make([]byte, 15)
	a := RateAfterAbsorb(msg, 8)
	msg[4] ^= 1
	b := RateAfterAbsorb(msg, 8)
	if a == b {
		t.Fatal("byte-4 flip invisible in 8-round rate")
	}
	msg[4] ^= 1
	msg[12] ^= 1
	c := RateAfterAbsorb(msg, 8)
	if a == c || b == c {
		t.Fatal("byte-12 flip collides")
	}
}

func TestDigestBitsLookBalancedFullRounds(t *testing.T) {
	// Negative control for the distinguisher: at full rounds, digest
	// bits of random messages should be balanced.
	r := prng.New(3)
	const trials = 2000
	ones := 0
	for i := 0; i < trials; i++ {
		d := Sum256(r.Bytes(12))
		ones += bits.PopCount(d[:])
	}
	totalBits := trials * DigestSize * 8
	frac := float64(ones) / float64(totalBits)
	if frac < 0.49 || frac > 0.51 {
		t.Fatalf("digest bit fraction %.4f outside [0.49, 0.51]", frac)
	}
}

func TestInternalStateMatchesManualSponge(t *testing.T) {
	// Independent re-derivation of the construction for a two-block
	// message, byte for byte.
	msg := make([]byte, 20)
	for i := range msg {
		msg[i] = byte(i + 1)
	}
	var s gimli.State
	s.XORBytes(msg[:16])
	gimli.Permute(&s)
	s.XORBytes(msg[16:])
	s.XORByte(4, 0x01) // padding right after the 4 remaining bytes
	s.XORByte(47, 0x01)
	gimli.Permute(&s)
	want := make([]byte, 32)
	copy(want[:16], s.Bytes()[:16])
	gimli.Permute(&s)
	copy(want[16:], s.Bytes()[:16])

	got := Sum256(msg)
	if !bits.Equal(got[:], want) {
		t.Fatalf("manual sponge disagrees:\n got %x\nwant %x", got, want)
	}
}

func BenchmarkSum256_64B(b *testing.B) {
	msg := make([]byte, 64)
	b.SetBytes(64)
	for i := 0; i < b.N; i++ {
		Sum256(msg)
	}
}

func BenchmarkRateAfterAbsorb8Rounds(b *testing.B) {
	msg := make([]byte, 15)
	for i := 0; i < b.N; i++ {
		RateAfterAbsorb(msg, 8)
	}
}
