package sponge

import (
	"fmt"

	"repro/internal/gimli"
)

// XOF is the arbitrary-output-length mode of GIMLI-HASH: the NIST LWC
// submission specifies the digest as the prefix of an unbounded
// squeeze stream, of which Sum256 returns the first 32 bytes. An XOF
// absorbs like the Hasher and then serves any number of output bytes
// through Read.
type XOF struct {
	h         *Hasher
	squeezing bool
	buf       [Rate]byte
	avail     int // unread bytes remaining in buf
}

// NewXOF returns a full-round GIMLI XOF.
func NewXOF() *XOF { return NewXOFRounds(gimli.FullRounds) }

// NewXOFRounds returns a round-reduced XOF (rounds in [1, 24]).
func NewXOFRounds(rounds int) *XOF {
	return &XOF{h: NewHash(rounds)}
}

// Write absorbs p. It panics if called after Read has started
// squeezing (the sponge cannot resume absorbing).
func (x *XOF) Write(p []byte) (int, error) {
	if x.squeezing {
		panic("sponge: XOF Write after Read")
	}
	return x.h.Write(p)
}

// Read squeezes len(p) output bytes. It always fills p and returns
// len(p), nil; the stream is unbounded.
func (x *XOF) Read(p []byte) (int, error) {
	if !x.squeezing {
		// Finalize the absorb phase exactly like Sum: pad, domain
		// separate, permute.
		x.h.done = true
		x.h.state.XORBytes(x.h.buf[:x.h.n])
		x.h.state.XORByte(x.h.n, 0x01)
		x.h.state.XORByte(gimli.StateBytes-1, 0x01)
		gimli.PermuteRounds(&x.h.state, x.h.rounds)
		copy(x.buf[:], x.h.state.Bytes()[:Rate])
		x.avail = Rate
		x.squeezing = true
	}
	total := len(p)
	for len(p) > 0 {
		if x.avail == 0 {
			gimli.PermuteRounds(&x.h.state, x.h.rounds)
			copy(x.buf[:], x.h.state.Bytes()[:Rate])
			x.avail = Rate
		}
		n := copy(p, x.buf[Rate-x.avail:])
		x.avail -= n
		p = p[n:]
	}
	return total, nil
}

// Reset returns the XOF to its initial (absorbing) state.
func (x *XOF) Reset() {
	x.h.Reset()
	x.squeezing = false
	x.avail = 0
}

// SumXOF computes n output bytes of the full-round GIMLI XOF of msg.
func SumXOF(msg []byte, n int) []byte {
	if n < 0 {
		panic(fmt.Sprintf("sponge: negative XOF length %d", n))
	}
	x := NewXOF()
	x.Write(msg)
	out := make([]byte, n)
	x.Read(out)
	return out
}
