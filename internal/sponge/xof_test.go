package sponge

import (
	"testing"

	"repro/internal/bits"
	"repro/internal/prng"
)

func TestXOFPrefixIsSum256(t *testing.T) {
	// The 32-byte digest is by construction the XOF's first 32 bytes.
	for _, msg := range [][]byte{nil, []byte("gimli"), make([]byte, 40)} {
		want := Sum256(msg)
		got := SumXOF(msg, 32)
		if !bits.Equal(got, want[:]) {
			t.Fatalf("XOF prefix differs from Sum256 for %d-byte message", len(msg))
		}
	}
}

func TestXOFStreamPrefixConsistency(t *testing.T) {
	// Reading N bytes then M more equals reading N+M at once.
	r := prng.New(1)
	msg := r.Bytes(37)
	all := SumXOF(msg, 200)

	x := NewXOF()
	x.Write(msg)
	part1 := make([]byte, 63)
	part2 := make([]byte, 137)
	x.Read(part1)
	x.Read(part2)
	if !bits.Equal(append(part1, part2...), all) {
		t.Fatal("chunked XOF reads disagree with one-shot read")
	}
}

func TestXOFReadSizes(t *testing.T) {
	// Byte-at-a-time reads equal bulk reads across rate boundaries.
	msg := []byte("stream me")
	bulk := SumXOF(msg, 50)
	x := NewXOF()
	x.Write(msg)
	one := make([]byte, 1)
	for i := 0; i < 50; i++ {
		n, err := x.Read(one)
		if n != 1 || err != nil {
			t.Fatalf("Read returned %d, %v", n, err)
		}
		if one[0] != bulk[i] {
			t.Fatalf("byte %d differs", i)
		}
	}
}

func TestXOFWriteAfterReadPanics(t *testing.T) {
	x := NewXOF()
	x.Read(make([]byte, 1))
	defer func() {
		if recover() == nil {
			t.Fatal("Write after Read did not panic")
		}
	}()
	x.Write([]byte("late"))
}

func TestXOFReset(t *testing.T) {
	x := NewXOF()
	x.Write([]byte("a"))
	x.Read(make([]byte, 16))
	x.Reset()
	x.Write([]byte("a"))
	out := make([]byte, 16)
	x.Read(out)
	if !bits.Equal(out, SumXOF([]byte("a"), 16)) {
		t.Fatal("Reset did not restore the initial state")
	}
}

func TestXOFOutputsDiffer(t *testing.T) {
	a := SumXOF([]byte("a"), 64)
	b := SumXOF([]byte("b"), 64)
	if bits.Equal(a, b) {
		t.Fatal("different messages gave identical XOF output")
	}
	// And the stream must not be periodic at the rate boundary.
	if bits.Equal(a[:16], a[16:32]) {
		t.Fatal("XOF stream repeats at the rate boundary")
	}
}

func TestXOFRoundReduced(t *testing.T) {
	a := SumXOF([]byte("x"), 32)
	x := NewXOFRounds(8)
	x.Write([]byte("x"))
	red := make([]byte, 32)
	x.Read(red)
	if bits.Equal(a, red) {
		t.Fatal("round-reduced XOF equals full-round XOF")
	}
}

func TestSumXOFNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative length accepted")
		}
	}()
	SumXOF(nil, -1)
}
