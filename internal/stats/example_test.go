package stats_test

import (
	"fmt"

	"repro/internal/stats"
)

// Section 3.1's expectation: classifying random data among t classes
// succeeds with probability E/t.
func ExampleExpectedRandomAccuracy() {
	for _, t := range []int{2, 32} {
		e, err := stats.ExpectedRandomAccuracy(t)
		if err != nil {
			panic(err)
		}
		fmt.Printf("t=%d: %.5f\n", t, e)
	}
	// Output:
	// t=2: 0.50000
	// t=32: 0.03125
}

// The online decision rule of Algorithm 2.
func ExampleDecide() {
	verdict, err := stats.Decide(0.95, 2, 0.94, 1000, 3)
	if err != nil {
		panic(err)
	}
	fmt.Println(verdict)
	verdict, _ = stats.Decide(0.95, 2, 0.50, 1000, 3)
	fmt.Println(verdict)
	// Output:
	// CIPHER
	// RANDOM
}
