// Package stats implements the statistical side of the distinguisher:
// the expected accuracy of classifying random data (Section 3.1 of the
// paper), confidence intervals, and the significance test behind the
// CIPHER-vs-RANDOM decision in Algorithm 2.
package stats

import (
	"fmt"
	"math"
)

// ExpectedRandomAccuracy computes the expected classification accuracy
// on random data for t classes, exactly as derived in Section 3.1:
// with Pr(i) = C(t,i)·(t−1)^(t−i) / t^t right classifications out of t,
// the expectation E = Σ i·Pr(i), and the accuracy is E/t. (The closed
// form is 1/t — classifying t uniformly random items among t classes —
// which the unit tests confirm; we keep the paper's summation to mirror
// its presentation.)
func ExpectedRandomAccuracy(t int) (float64, error) {
	if t < 1 {
		return 0, fmt.Errorf("stats: need at least 1 class, got %d", t)
	}
	// Work in log space: Pr(i) = exp(logC(t,i) + (t−i)·log(t−1) − t·log t).
	logT := math.Log(float64(t))
	var e float64
	for i := 0; i <= t; i++ {
		var logP float64
		if t == 1 {
			// Degenerate single-class case: always right.
			if i == 1 {
				logP = 0
			} else {
				continue
			}
		} else {
			logP = logChoose(t, i) + float64(t-i)*math.Log(float64(t-1)) - float64(t)*logT
		}
		e += float64(i) * math.Exp(logP)
	}
	return e / float64(t), nil
}

// logChoose returns log C(n, k).
func logChoose(n, k int) float64 {
	return logFactorial(n) - logFactorial(k) - logFactorial(n-k)
}

// logFactorial returns log n! via the log-gamma function.
func logFactorial(n int) float64 {
	lg, _ := math.Lgamma(float64(n) + 1)
	return lg
}

// Accuracy returns the fraction of positions where pred equals label.
// It panics if the slices differ in length and returns 0 for empty
// input.
func Accuracy(pred, label []int) float64 {
	if len(pred) != len(label) {
		panic("stats: Accuracy length mismatch")
	}
	if len(pred) == 0 {
		return 0
	}
	hit := 0
	for i := range pred {
		if pred[i] == label[i] {
			hit++
		}
	}
	return float64(hit) / float64(len(pred))
}

// ConfusionMatrix tabulates predictions against labels for t classes:
// m[label][pred].
func ConfusionMatrix(pred, label []int, t int) [][]int {
	m := make([][]int, t)
	for i := range m {
		m[i] = make([]int, t)
	}
	for i := range pred {
		if label[i] >= 0 && label[i] < t && pred[i] >= 0 && pred[i] < t {
			m[label[i]][pred[i]]++
		}
	}
	return m
}

// BinomialSigma returns the standard deviation of an empirical accuracy
// estimated from n Bernoulli(p) trials.
func BinomialSigma(p float64, n int) float64 {
	if n <= 0 {
		return math.Inf(1)
	}
	return math.Sqrt(p * (1 - p) / float64(n))
}

// ZScore returns how many null-hypothesis standard deviations the
// observed accuracy lies above p0, for n trials.
func ZScore(observed, p0 float64, n int) float64 {
	sigma := BinomialSigma(p0, n)
	if sigma == 0 {
		if observed == p0 {
			return 0
		}
		return math.Inf(1)
	}
	return (observed - p0) / sigma
}

// NormalCDF is the standard normal cumulative distribution function.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// WilsonInterval returns the Wilson score interval for an empirical
// proportion p̂ over n trials at z standard deviations (z = 1.96 for
// 95%).
func WilsonInterval(pHat float64, n int, z float64) (lo, hi float64) {
	if n <= 0 {
		return 0, 1
	}
	nf := float64(n)
	denom := 1 + z*z/nf
	center := (pHat + z*z/(2*nf)) / denom
	half := z * math.Sqrt(pHat*(1-pHat)/nf+z*z/(4*nf*nf)) / denom
	return center - half, center + half
}

// Verdict is the outcome of the online phase of Algorithm 2.
type Verdict int

// The three possible outcomes of the oracle game.
const (
	VerdictInconclusive Verdict = iota
	VerdictCipher
	VerdictRandom
)

// String renders the verdict.
func (v Verdict) String() string {
	switch v {
	case VerdictCipher:
		return "CIPHER"
	case VerdictRandom:
		return "RANDOM"
	default:
		return "INCONCLUSIVE"
	}
}

// Decide implements the decision rule of Algorithm 2's online phase:
// given the offline training accuracy a, the number of classes t, the
// online accuracy aPrime over n predictions, and a significance level
// in sigmas, it decides whether the oracle is the cipher (a′ ≈ a), a
// random oracle (a′ ≈ 1/t), or neither hypothesis is favored.
//
// The rule is a midpoint threshold with significance guards: the
// training accuracy must itself exceed 1/t (otherwise the procedure is
// aborted per the paper), and the online accuracy must be significantly
// on one side of the midpoint between 1/t and a.
func Decide(a float64, t int, aPrime float64, n int, sigmas float64) (Verdict, error) {
	if t < 2 {
		return VerdictInconclusive, fmt.Errorf("stats: need t ≥ 2 classes, got %d", t)
	}
	if n <= 0 {
		return VerdictInconclusive, fmt.Errorf("stats: need online predictions, got n=%d", n)
	}
	base := 1 / float64(t)
	if a <= base {
		// Step "Abort" of Algorithm 2: training learned nothing.
		return VerdictInconclusive, fmt.Errorf("stats: training accuracy %.4f not above 1/t = %.4f", a, base)
	}
	mid := (a + base) / 2
	// Significance: distance from the midpoint in null sigmas.
	sigma := BinomialSigma(mid, n)
	switch {
	case aPrime >= mid+sigmas*sigma:
		return VerdictCipher, nil
	case aPrime <= mid-sigmas*sigma:
		return VerdictRandom, nil
	default:
		return VerdictInconclusive, nil
	}
}

// OnlineQueriesFor returns an estimate of the number of online
// predictions needed to separate accuracy a from 1/t at the given
// number of sigmas: the gap must exceed 2·sigmas·σ(mid).
func OnlineQueriesFor(a float64, t int, sigmas float64) (int, error) {
	if t < 2 {
		return 0, fmt.Errorf("stats: need t ≥ 2 classes, got %d", t)
	}
	base := 1 / float64(t)
	gap := a - base
	if gap <= 0 {
		return 0, fmt.Errorf("stats: accuracy %.4f does not exceed 1/t", a)
	}
	mid := (a + base) / 2
	// Solve gap/2 ≥ sigmas·sqrt(mid(1−mid)/n)  for n.
	n := mid * (1 - mid) * (2 * sigmas / gap) * (2 * sigmas / gap)
	return int(math.Ceil(n)), nil
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs (0 for fewer than
// two values).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}
