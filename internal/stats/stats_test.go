package stats

import (
	"math"
	"testing"

	"repro/internal/prng"
)

func TestExpectedRandomAccuracyPaperValues(t *testing.T) {
	// Section 3.1: t=2 → 0.5, t=32 → 0.03125.
	cases := []struct {
		t    int
		want float64
	}{
		{2, 0.5},
		{32, 0.03125},
		{4, 0.25},
		{10, 0.1},
	}
	for _, c := range cases {
		got, err := ExpectedRandomAccuracy(c.t)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("ExpectedRandomAccuracy(%d) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestExpectedRandomAccuracyClosedForm(t *testing.T) {
	// The paper's summation must agree with the closed form 1/t.
	for tt := 2; tt <= 64; tt++ {
		got, err := ExpectedRandomAccuracy(tt)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-1/float64(tt)) > 1e-9 {
			t.Errorf("t=%d: %v != 1/t", tt, got)
		}
	}
}

func TestExpectedRandomAccuracyMonteCarlo(t *testing.T) {
	// Monte-Carlo cross-check: classify t random items uniformly.
	r := prng.New(1)
	const tt = 8
	const trials = 40000
	hits := 0
	for i := 0; i < trials; i++ {
		if r.Intn(tt) == r.Intn(tt) {
			hits++
		}
	}
	mc := float64(hits) / trials
	exact, _ := ExpectedRandomAccuracy(tt)
	if math.Abs(mc-exact) > 0.01 {
		t.Errorf("Monte-Carlo %v vs exact %v", mc, exact)
	}
}

func TestExpectedRandomAccuracyValidation(t *testing.T) {
	if _, err := ExpectedRandomAccuracy(0); err == nil {
		t.Error("t=0 accepted")
	}
	if got, err := ExpectedRandomAccuracy(1); err != nil || got != 1 {
		t.Errorf("t=1 should be trivially 1, got %v, %v", got, err)
	}
}

func TestAccuracy(t *testing.T) {
	if a := Accuracy([]int{1, 2, 3}, []int{1, 0, 3}); math.Abs(a-2.0/3) > 1e-15 {
		t.Errorf("Accuracy = %v", a)
	}
	if a := Accuracy(nil, nil); a != 0 {
		t.Errorf("empty Accuracy = %v", a)
	}
}

func TestAccuracyPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch accepted")
		}
	}()
	Accuracy([]int{1}, []int{1, 2})
}

func TestConfusionMatrix(t *testing.T) {
	m := ConfusionMatrix([]int{0, 1, 1, 0}, []int{0, 1, 0, 1}, 2)
	if m[0][0] != 1 || m[1][1] != 1 || m[0][1] != 1 || m[1][0] != 1 {
		t.Errorf("confusion matrix = %v", m)
	}
}

func TestZScoreAndCDF(t *testing.T) {
	// 60% observed over 100 trials vs 50% null: z = 2.
	z := ZScore(0.6, 0.5, 100)
	if math.Abs(z-2) > 1e-12 {
		t.Errorf("ZScore = %v, want 2", z)
	}
	if math.Abs(NormalCDF(0)-0.5) > 1e-12 {
		t.Errorf("NormalCDF(0) = %v", NormalCDF(0))
	}
	if p := NormalCDF(3); p < 0.998 {
		t.Errorf("NormalCDF(3) = %v", p)
	}
}

func TestWilsonIntervalContainsTruth(t *testing.T) {
	lo, hi := WilsonInterval(0.5, 1000, 1.96)
	if lo > 0.5 || hi < 0.5 {
		t.Errorf("Wilson interval [%v,%v] excludes the point estimate", lo, hi)
	}
	if hi-lo > 0.07 {
		t.Errorf("Wilson interval [%v,%v] too wide for n=1000", lo, hi)
	}
	lo, hi = WilsonInterval(0.5, 0, 1.96)
	if lo != 0 || hi != 1 {
		t.Errorf("degenerate Wilson interval = [%v,%v]", lo, hi)
	}
}

func TestDecideCipher(t *testing.T) {
	// Training accuracy 0.95 at t=2; online 0.94 over 1000: CIPHER.
	v, err := Decide(0.95, 2, 0.94, 1000, 3)
	if err != nil || v != VerdictCipher {
		t.Fatalf("Decide = %v, %v; want CIPHER", v, err)
	}
}

func TestDecideRandom(t *testing.T) {
	v, err := Decide(0.95, 2, 0.502, 1000, 3)
	if err != nil || v != VerdictRandom {
		t.Fatalf("Decide = %v, %v; want RANDOM", v, err)
	}
}

func TestDecideInconclusiveNearMidpoint(t *testing.T) {
	v, err := Decide(0.6, 2, 0.55, 100, 3)
	if err != nil || v != VerdictInconclusive {
		t.Fatalf("Decide = %v, %v; want INCONCLUSIVE near the midpoint", v, err)
	}
}

func TestDecideAbortsWhenTrainingFailed(t *testing.T) {
	// Algorithm 2 aborts when a ≤ 1/t.
	if _, err := Decide(0.5, 2, 0.9, 1000, 3); err == nil {
		t.Fatal("training accuracy at 1/t not rejected")
	}
	if _, err := Decide(0.9, 1, 0.9, 1000, 3); err == nil {
		t.Fatal("t=1 not rejected")
	}
	if _, err := Decide(0.9, 2, 0.9, 0, 3); err == nil {
		t.Fatal("n=0 not rejected")
	}
}

func TestVerdictString(t *testing.T) {
	if VerdictCipher.String() != "CIPHER" ||
		VerdictRandom.String() != "RANDOM" ||
		VerdictInconclusive.String() != "INCONCLUSIVE" {
		t.Fatal("verdict strings wrong")
	}
}

func TestOnlineQueriesFor(t *testing.T) {
	// Strong distinguisher (0.95 vs 0.5) needs few queries; a weak one
	// (0.51 vs 0.5) needs many. The paper's 8-round accuracies (~0.52)
	// against 2^14.3 ≈ 20k online data are consistent with this.
	few, err := OnlineQueriesFor(0.95, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	many, err := OnlineQueriesFor(0.51, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if few >= many {
		t.Fatalf("query counts not ordered: strong=%d weak=%d", few, many)
	}
	if many < 5000 {
		t.Fatalf("weak distinguisher query count %d implausibly small", many)
	}
	// The paper's 8-round GIMLI-HASH accuracy 0.5219 should need on the
	// order of 2^14.3 ≈ 20k queries at 3 sigma — same order of magnitude.
	n, err := OnlineQueriesFor(0.5219, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if n < 2000 || n > 100000 {
		t.Fatalf("0.5219-accuracy query estimate %d not in the paper's 2^14.3 ballpark", n)
	}
	if _, err := OnlineQueriesFor(0.4, 2, 3); err == nil {
		t.Error("accuracy below 1/t accepted")
	}
}

func TestMeanStdDev(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if m := Mean(xs); m != 2.5 {
		t.Errorf("Mean = %v", m)
	}
	if s := StdDev(xs); math.Abs(s-math.Sqrt(5.0/3)) > 1e-12 {
		t.Errorf("StdDev = %v", s)
	}
	if Mean(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Error("degenerate Mean/StdDev wrong")
	}
}

func TestDecisionEndToEndMonteCarlo(t *testing.T) {
	// Simulate the online game many times: with a true cipher accuracy
	// of 0.75 and 500 queries, the verdict must be CIPHER essentially
	// always; with true accuracy 0.5 (random), RANDOM.
	r := prng.New(2)
	simulate := func(trueP float64) Verdict {
		hits := 0
		const n = 500
		for i := 0; i < n; i++ {
			if r.Float64() < trueP {
				hits++
			}
		}
		v, err := Decide(0.75, 2, float64(hits)/n, n, 3)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	for i := 0; i < 50; i++ {
		if v := simulate(0.75); v != VerdictCipher {
			t.Fatalf("cipher simulation %d gave %v", i, v)
		}
		if v := simulate(0.5); v != VerdictRandom {
			t.Fatalf("random simulation %d gave %v", i, v)
		}
	}
}
