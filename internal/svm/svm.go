// Package svm provides non-neural classifiers for the distinguisher:
// a linear multi-class support vector machine trained with the Pegasos
// stochastic sub-gradient algorithm, and multinomial logistic
// regression. The paper's conclusion suggests an SVM can replace the
// neural network because the distinguisher only needs *a* classifier
// whose accuracy exceeds 1/t; these models make that concrete and give
// the repository a cheap ablation axis.
package svm

import (
	"fmt"
	"math"

	"repro/internal/prng"
)

// LinearSVM is a one-vs-rest linear SVM with hinge loss and L2
// regularization, trained by Pegasos (Shalev-Shwartz et al.).
type LinearSVM struct {
	Classes, Dim int
	Lambda       float64 // regularization strength
	Epochs       int
	Seed         uint64

	w [][]float64 // per class: Dim weights + bias at index Dim
}

// NewLinearSVM constructs an untrained SVM. lambda ≤ 0 selects the
// default 1e-4; epochs ≤ 0 selects 5.
func NewLinearSVM(dim, classes int, lambda float64, epochs int, seed uint64) (*LinearSVM, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("svm: invalid feature dim %d", dim)
	}
	if classes < 2 {
		return nil, fmt.Errorf("svm: need ≥ 2 classes, got %d", classes)
	}
	if lambda <= 0 {
		lambda = 1e-4
	}
	if epochs <= 0 {
		epochs = 5
	}
	return &LinearSVM{Classes: classes, Dim: dim, Lambda: lambda, Epochs: epochs, Seed: seed}, nil
}

// Fit trains one-vs-rest hinge-loss classifiers with the Pegasos
// schedule η_t = 1/(λt).
func (s *LinearSVM) Fit(x [][]float64, y []int) error {
	if len(x) == 0 {
		return fmt.Errorf("svm: empty training set")
	}
	if len(x) != len(y) {
		return fmt.Errorf("svm: %d samples but %d labels", len(x), len(y))
	}
	for i, row := range x {
		if len(row) != s.Dim {
			return fmt.Errorf("svm: sample %d has %d features, want %d", i, len(row), s.Dim)
		}
		if y[i] < 0 || y[i] >= s.Classes {
			return fmt.Errorf("svm: label %d at index %d out of range", y[i], i)
		}
	}
	s.w = make([][]float64, s.Classes)
	for c := range s.w {
		s.w[c] = make([]float64, s.Dim+1)
	}
	r := prng.New(s.Seed ^ 0x5f3759df)
	t := 1
	for epoch := 0; epoch < s.Epochs; epoch++ {
		order := r.Perm(len(x))
		for _, idx := range order {
			eta := 1 / (s.Lambda * float64(t))
			t++
			xi := x[idx]
			for c := 0; c < s.Classes; c++ {
				target := -1.0
				if y[idx] == c {
					target = 1.0
				}
				w := s.w[c]
				margin := w[s.Dim]
				for j, v := range xi {
					margin += w[j] * v
				}
				margin *= target
				// L2 shrinkage on the weights (not the bias).
				shrink := 1 - eta*s.Lambda
				if shrink < 0 {
					shrink = 0
				}
				for j := 0; j < s.Dim; j++ {
					w[j] *= shrink
				}
				if margin < 1 {
					for j, v := range xi {
						w[j] += eta * target * v
					}
					w[s.Dim] += eta * target
				}
			}
		}
	}
	return nil
}

// Score returns the per-class decision values for one sample.
func (s *LinearSVM) Score(x []float64) ([]float64, error) {
	if s.w == nil {
		return nil, fmt.Errorf("svm: model not trained")
	}
	if len(x) != s.Dim {
		return nil, fmt.Errorf("svm: sample has %d features, want %d", len(x), s.Dim)
	}
	out := make([]float64, s.Classes)
	for c, w := range s.w {
		v := w[s.Dim]
		for j, xv := range x {
			v += w[j] * xv
		}
		out[c] = v
	}
	return out, nil
}

// Predict returns the class with the highest decision value. It panics
// if the model is untrained (Fit reported an error or was never
// called); use Score for a checked variant.
func (s *LinearSVM) Predict(x []float64) int {
	scores, err := s.Score(x)
	if err != nil {
		panic(err)
	}
	best, bestV := 0, math.Inf(-1)
	for c, v := range scores {
		if v > bestV {
			best, bestV = c, v
		}
	}
	return best
}

// PredictBatch classifies many samples. The per-sample work is one
// dense Classes×Dim product, so the batch path is a straight loop; it
// exists to satisfy the core batched-inference contract.
func (s *LinearSVM) PredictBatch(x [][]float64) []int {
	out := make([]int, len(x))
	for i, row := range x {
		out[i] = s.Predict(row)
	}
	return out
}

// Name identifies the classifier.
func (s *LinearSVM) Name() string { return "linear-svm" }

// Logistic is multinomial logistic regression trained by mini-batch
// gradient descent — the smallest possible "three layer" (input,
// linear, softmax) model in the paper's counting.
type Logistic struct {
	Classes, Dim int
	LR           float64
	Epochs       int
	Batch        int
	Seed         uint64

	w [][]float64 // per class: Dim weights + bias
}

// NewLogistic constructs an untrained logistic-regression model.
// Non-positive lr, epochs or batch select defaults (0.1, 5, 64).
func NewLogistic(dim, classes int, lr float64, epochs, batch int, seed uint64) (*Logistic, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("svm: invalid feature dim %d", dim)
	}
	if classes < 2 {
		return nil, fmt.Errorf("svm: need ≥ 2 classes, got %d", classes)
	}
	if lr <= 0 {
		lr = 0.1
	}
	if epochs <= 0 {
		epochs = 5
	}
	if batch <= 0 {
		batch = 64
	}
	return &Logistic{Classes: classes, Dim: dim, LR: lr, Epochs: epochs, Batch: batch, Seed: seed}, nil
}

// Fit trains by mini-batch gradient descent on the softmax
// cross-entropy.
func (l *Logistic) Fit(x [][]float64, y []int) error {
	if len(x) == 0 {
		return fmt.Errorf("svm: empty training set")
	}
	if len(x) != len(y) {
		return fmt.Errorf("svm: %d samples but %d labels", len(x), len(y))
	}
	for i, row := range x {
		if len(row) != l.Dim {
			return fmt.Errorf("svm: sample %d has %d features, want %d", i, len(row), l.Dim)
		}
		if y[i] < 0 || y[i] >= l.Classes {
			return fmt.Errorf("svm: label %d at index %d out of range", y[i], i)
		}
	}
	l.w = make([][]float64, l.Classes)
	for c := range l.w {
		l.w[c] = make([]float64, l.Dim+1)
	}
	r := prng.New(l.Seed ^ 0x2545f491)
	probs := make([]float64, l.Classes)
	for epoch := 0; epoch < l.Epochs; epoch++ {
		order := r.Perm(len(x))
		for start := 0; start < len(order); start += l.Batch {
			end := start + l.Batch
			if end > len(order) {
				end = len(order)
			}
			// Accumulate batch gradient.
			grad := make([][]float64, l.Classes)
			for c := range grad {
				grad[c] = make([]float64, l.Dim+1)
			}
			for _, idx := range order[start:end] {
				l.probsInto(x[idx], probs)
				for c := 0; c < l.Classes; c++ {
					g := probs[c]
					if c == y[idx] {
						g -= 1
					}
					gc := grad[c]
					for j, v := range x[idx] {
						gc[j] += g * v
					}
					gc[l.Dim] += g
				}
			}
			scale := l.LR / float64(end-start)
			for c := range l.w {
				for j := range l.w[c] {
					l.w[c][j] -= scale * grad[c][j]
				}
			}
		}
	}
	return nil
}

func (l *Logistic) probsInto(x []float64, out []float64) {
	max := math.Inf(-1)
	for c, w := range l.w {
		v := w[l.Dim]
		for j, xv := range x {
			v += w[j] * xv
		}
		out[c] = v
		if v > max {
			max = v
		}
	}
	sum := 0.0
	for c := range out {
		out[c] = math.Exp(out[c] - max)
		sum += out[c]
	}
	for c := range out {
		out[c] /= sum
	}
}

// Probs returns class probabilities for one sample.
func (l *Logistic) Probs(x []float64) ([]float64, error) {
	if l.w == nil {
		return nil, fmt.Errorf("svm: model not trained")
	}
	if len(x) != l.Dim {
		return nil, fmt.Errorf("svm: sample has %d features, want %d", len(x), l.Dim)
	}
	out := make([]float64, l.Classes)
	l.probsInto(x, out)
	return out, nil
}

// Predict returns the most probable class. It panics if the model is
// untrained; use Probs for a checked variant.
func (l *Logistic) Predict(x []float64) int {
	probs, err := l.Probs(x)
	if err != nil {
		panic(err)
	}
	best, bestV := 0, math.Inf(-1)
	for c, v := range probs {
		if v > bestV {
			best, bestV = c, v
		}
	}
	return best
}

// PredictBatch classifies many samples, reusing one probability
// scratch buffer across the whole batch.
func (l *Logistic) PredictBatch(x [][]float64) []int {
	if l.w == nil {
		panic(fmt.Errorf("svm: model not trained"))
	}
	out := make([]int, len(x))
	probs := make([]float64, l.Classes)
	for i, row := range x {
		if len(row) != l.Dim {
			panic(fmt.Errorf("svm: sample has %d features, want %d", len(row), l.Dim))
		}
		l.probsInto(row, probs)
		best, bestV := 0, math.Inf(-1)
		for c, v := range probs {
			if v > bestV {
				best, bestV = c, v
			}
		}
		out[i] = best
	}
	return out
}

// Name identifies the classifier.
func (l *Logistic) Name() string { return "logistic" }
