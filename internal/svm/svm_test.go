package svm

import (
	"testing"

	"repro/internal/prng"
)

// blobs generates n points per class around separated centers.
func blobs(r *prng.Rand, classes, dim, n int, sep float64) ([][]float64, []int) {
	var x [][]float64
	var y []int
	for c := 0; c < classes; c++ {
		for i := 0; i < n; i++ {
			row := make([]float64, dim)
			for j := range row {
				row[j] = r.NormFloat64()
			}
			row[c%dim] += sep * float64(1+c/dim)
			x = append(x, row)
			y = append(y, c)
		}
	}
	return x, y
}

func accuracyOf(predict func([]float64) int, x [][]float64, y []int) float64 {
	hit := 0
	for i := range x {
		if predict(x[i]) == y[i] {
			hit++
		}
	}
	return float64(hit) / float64(len(x))
}

func TestSVMBinaryBlobs(t *testing.T) {
	r := prng.New(1)
	x, y := blobs(r, 2, 4, 300, 4)
	s, err := NewLinearSVM(4, 2, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if acc := accuracyOf(s.Predict, x, y); acc < 0.95 {
		t.Fatalf("SVM accuracy %v on separable blobs", acc)
	}
}

func TestSVMMulticlass(t *testing.T) {
	r := prng.New(2)
	x, y := blobs(r, 4, 6, 200, 5)
	s, _ := NewLinearSVM(6, 4, 1e-4, 8, 2)
	if err := s.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if acc := accuracyOf(s.Predict, x, y); acc < 0.9 {
		t.Fatalf("multiclass SVM accuracy %v", acc)
	}
}

func TestLogisticBinaryBlobs(t *testing.T) {
	r := prng.New(3)
	x, y := blobs(r, 2, 4, 300, 4)
	l, err := NewLogistic(4, 2, 0, 0, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if acc := accuracyOf(l.Predict, x, y); acc < 0.95 {
		t.Fatalf("logistic accuracy %v", acc)
	}
}

func TestLogisticProbsSumToOne(t *testing.T) {
	r := prng.New(4)
	x, y := blobs(r, 3, 5, 50, 3)
	l, _ := NewLogistic(5, 3, 0.2, 3, 32, 4)
	if err := l.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	p, err := l.Probs(x[0])
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, v := range p {
		if v < 0 || v > 1 {
			t.Fatalf("probability %v out of range", v)
		}
		sum += v
	}
	if sum < 0.999999 || sum > 1.000001 {
		t.Fatalf("probabilities sum to %v", sum)
	}
}

func TestConstructorValidation(t *testing.T) {
	if _, err := NewLinearSVM(0, 2, 0, 0, 1); err == nil {
		t.Error("dim 0 accepted")
	}
	if _, err := NewLinearSVM(4, 1, 0, 0, 1); err == nil {
		t.Error("1 class accepted")
	}
	if _, err := NewLogistic(-1, 2, 0, 0, 0, 1); err == nil {
		t.Error("negative dim accepted")
	}
	if _, err := NewLogistic(4, 0, 0, 0, 0, 1); err == nil {
		t.Error("0 classes accepted")
	}
}

func TestFitValidation(t *testing.T) {
	s, _ := NewLinearSVM(3, 2, 0, 0, 1)
	if err := s.Fit(nil, nil); err == nil {
		t.Error("empty set accepted")
	}
	if err := s.Fit([][]float64{{1, 2, 3}}, []int{0, 1}); err == nil {
		t.Error("label mismatch accepted")
	}
	if err := s.Fit([][]float64{{1, 2}}, []int{0}); err == nil {
		t.Error("wrong dim accepted")
	}
	if err := s.Fit([][]float64{{1, 2, 3}}, []int{5}); err == nil {
		t.Error("out-of-range label accepted")
	}
	l, _ := NewLogistic(3, 2, 0, 0, 0, 1)
	if err := l.Fit([][]float64{{1, 2, 3}}, []int{9}); err == nil {
		t.Error("logistic out-of-range label accepted")
	}
}

func TestUntrainedModelErrors(t *testing.T) {
	s, _ := NewLinearSVM(3, 2, 0, 0, 1)
	if _, err := s.Score([]float64{1, 2, 3}); err == nil {
		t.Error("untrained SVM scored")
	}
	l, _ := NewLogistic(3, 2, 0, 0, 0, 1)
	if _, err := l.Probs([]float64{1, 2, 3}); err == nil {
		t.Error("untrained logistic scored")
	}
}

func TestDeterministicTraining(t *testing.T) {
	r := prng.New(5)
	x, y := blobs(r, 2, 3, 100, 3)
	train := func() []float64 {
		s, _ := NewLinearSVM(3, 2, 0, 3, 99)
		if err := s.Fit(x, y); err != nil {
			t.Fatal(err)
		}
		sc, _ := s.Score(x[0])
		return sc
	}
	a, b := train(), train()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("SVM training not deterministic")
		}
	}
}

func TestSVMOnBitFeatures(t *testing.T) {
	// The distinguisher's actual feature type: {0,1} vectors where one
	// bit is biased by class.
	r := prng.New(6)
	const dim = 32
	var x [][]float64
	var y []int
	for i := 0; i < 2000; i++ {
		c := i % 2
		row := make([]float64, dim)
		for j := range row {
			row[j] = float64(r.Intn(2))
		}
		// Class-dependent bias on bits 3 and 17.
		if c == 1 {
			if r.Float64() < 0.8 {
				row[3] = 1
			}
			if r.Float64() < 0.8 {
				row[17] = 0
			}
		}
		x = append(x, row)
		y = append(y, c)
	}
	s, _ := NewLinearSVM(dim, 2, 1e-4, 10, 7)
	if err := s.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if acc := accuracyOf(s.Predict, x, y); acc < 0.6 {
		t.Fatalf("SVM failed to exploit bit bias: accuracy %v", acc)
	}
}
