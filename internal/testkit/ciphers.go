package testkit

import (
	"fmt"

	"repro/internal/chaskey"
	"repro/internal/gimli"
	"repro/internal/prng"
	"repro/internal/salsa"
	"repro/internal/simeck"
	"repro/internal/simon"
	"repro/internal/speck"
)

// Cipher-state generators. These are ordinary Gens over the concrete
// state/key types of the primitive packages, so round-trip and
// conformance properties read naturally at the call site. The test
// files that use them must live in external test packages
// (package foo_test) — testkit imports the primitives, so an
// in-package test importing testkit would be an import cycle.

// GimliState generates uniform 384-bit GIMLI states. Shrinking clears
// whole words, then single bits of the lowest nonzero word, homing in
// on the state bit that triggers a failure.
func GimliState() Gen[gimli.State] {
	return Gen[gimli.State]{
		Name: "gimli.State",
		Generate: func(r *prng.Rand) gimli.State {
			var s gimli.State
			for i := range s {
				s[i] = r.Uint32()
			}
			return s
		},
		Shrink: func(v gimli.State) []gimli.State {
			var out []gimli.State
			zero := gimli.State{}
			if v != zero {
				out = append(out, zero)
			}
			for i, w := range v {
				if w != 0 {
					c := v
					c[i] = 0
					out = append(out, c)
				}
			}
			for i, w := range v {
				if w == 0 {
					continue
				}
				for k := 0; k < 32; k++ {
					if w>>k&1 == 1 {
						c := v
						c[i] &^= 1 << k
						out = append(out, c)
					}
				}
				break
			}
			return out
		},
		Format: func(v gimli.State) string { return fmt.Sprintf("%08x", [12]uint32(v)) },
	}
}

// SalsaState generates uniform 512-bit Salsa20 states with word-wise
// shrinking.
func SalsaState() Gen[salsa.State] {
	return Gen[salsa.State]{
		Name: "salsa.State",
		Generate: func(r *prng.Rand) salsa.State {
			var s salsa.State
			for i := range s {
				s[i] = r.Uint32()
			}
			return s
		},
		Shrink: func(v salsa.State) []salsa.State {
			var out []salsa.State
			zero := salsa.State{}
			if v != zero {
				out = append(out, zero)
			}
			for i, w := range v {
				if w != 0 {
					c := v
					c[i] = 0
					out = append(out, c)
				}
			}
			return out
		},
		Format: func(v salsa.State) string { return fmt.Sprintf("%08x", [16]uint32(v)) },
	}
}

// SpeckCase is one SPECK-32/64 round-trip instance: a key, a
// plaintext block, and a round count.
type SpeckCase struct {
	Key    [speck.KeyWords]uint16
	Block  speck.Block
	Rounds int
}

// SpeckCases generates SPECK key/block/round triples covering every
// round count in [0, 22]. Shrinking zeroes key and block words and
// lowers the round count.
func SpeckCases() Gen[SpeckCase] {
	return Gen[SpeckCase]{
		Name: "speck case",
		Generate: func(r *prng.Rand) SpeckCase {
			var c SpeckCase
			for i := range c.Key {
				c.Key[i] = r.Uint16()
			}
			c.Block = speck.Block{X: r.Uint16(), Y: r.Uint16()}
			c.Rounds = r.Intn(speck.Rounds + 1)
			return c
		},
		Shrink: func(v SpeckCase) []SpeckCase {
			var out []SpeckCase
			if v.Rounds > 0 {
				c := v
				c.Rounds--
				out = append(out, c)
			}
			for i, w := range v.Key {
				if w != 0 {
					c := v
					c.Key[i] = 0
					out = append(out, c)
				}
			}
			if v.Block.X != 0 {
				c := v
				c.Block.X = 0
				out = append(out, c)
			}
			if v.Block.Y != 0 {
				c := v
				c.Block.Y = 0
				out = append(out, c)
			}
			return out
		},
		Format: func(v SpeckCase) string {
			return fmt.Sprintf("key=%04x block=(%04x,%04x) rounds=%d", v.Key, v.Block.X, v.Block.Y, v.Rounds)
		},
	}
}

// SimonCase is one SIMON-32/64 round-trip instance: a key, a plaintext
// block, and a round count.
type SimonCase struct {
	Key    simon.Key
	Block  simon.Block
	Rounds int
}

// SimonCases generates SIMON key/block/round triples covering every
// round count in [0, 32]. Shrinking zeroes key and block words and
// lowers the round count.
func SimonCases() Gen[SimonCase] {
	return Gen[SimonCase]{
		Name: "simon case",
		Generate: func(r *prng.Rand) SimonCase {
			var c SimonCase
			for i := range c.Key {
				c.Key[i] = r.Uint16()
			}
			c.Block = simon.Block{X: r.Uint16(), Y: r.Uint16()}
			c.Rounds = r.Intn(simon.Rounds + 1)
			return c
		},
		Shrink: func(v SimonCase) []SimonCase {
			var out []SimonCase
			if v.Rounds > 0 {
				c := v
				c.Rounds--
				out = append(out, c)
			}
			for i, w := range v.Key {
				if w != 0 {
					c := v
					c.Key[i] = 0
					out = append(out, c)
				}
			}
			if v.Block.X != 0 {
				c := v
				c.Block.X = 0
				out = append(out, c)
			}
			if v.Block.Y != 0 {
				c := v
				c.Block.Y = 0
				out = append(out, c)
			}
			return out
		},
		Format: func(v SimonCase) string {
			return fmt.Sprintf("key=%04x block=(%04x,%04x) rounds=%d", [4]uint16(v.Key), v.Block.X, v.Block.Y, v.Rounds)
		},
	}
}

// SimeckCase is one SIMECK-32/64 round-trip instance: a key, a
// plaintext block, and a round count.
type SimeckCase struct {
	Key    simeck.Key
	Block  simeck.Block
	Rounds int
}

// SimeckCases generates SIMECK key/block/round triples covering every
// round count in [0, 32].
func SimeckCases() Gen[SimeckCase] {
	return Gen[SimeckCase]{
		Name: "simeck case",
		Generate: func(r *prng.Rand) SimeckCase {
			var c SimeckCase
			for i := range c.Key {
				c.Key[i] = r.Uint16()
			}
			c.Block = simeck.Block{X: r.Uint16(), Y: r.Uint16()}
			c.Rounds = r.Intn(simeck.Rounds + 1)
			return c
		},
		Shrink: func(v SimeckCase) []SimeckCase {
			var out []SimeckCase
			if v.Rounds > 0 {
				c := v
				c.Rounds--
				out = append(out, c)
			}
			for i, w := range v.Key {
				if w != 0 {
					c := v
					c.Key[i] = 0
					out = append(out, c)
				}
			}
			if v.Block.X != 0 {
				c := v
				c.Block.X = 0
				out = append(out, c)
			}
			if v.Block.Y != 0 {
				c := v
				c.Block.Y = 0
				out = append(out, c)
			}
			return out
		},
		Format: func(v SimeckCase) string {
			return fmt.Sprintf("key=%04x block=(%04x,%04x) rounds=%d", [4]uint16(v.Key), v.Block.X, v.Block.Y, v.Rounds)
		},
	}
}

// ChaskeyCase is one Chaskey permutation instance: a state and a round
// count.
type ChaskeyCase struct {
	State  chaskey.State
	Rounds int
}

// ChaskeyCases generates uniform 128-bit states with round counts in
// [0, 12]. Shrinking zeroes state words and lowers the round count.
func ChaskeyCases() Gen[ChaskeyCase] {
	return Gen[ChaskeyCase]{
		Name: "chaskey case",
		Generate: func(r *prng.Rand) ChaskeyCase {
			var c ChaskeyCase
			for i := range c.State {
				c.State[i] = r.Uint32()
			}
			c.Rounds = r.Intn(chaskey.LTSRounds + 1)
			return c
		},
		Shrink: func(v ChaskeyCase) []ChaskeyCase {
			var out []ChaskeyCase
			if v.Rounds > 0 {
				c := v
				c.Rounds--
				out = append(out, c)
			}
			for i, w := range v.State {
				if w != 0 {
					c := v
					c.State[i] = 0
					out = append(out, c)
				}
			}
			return out
		},
		Format: func(v ChaskeyCase) string {
			return fmt.Sprintf("state=%08x rounds=%d", [4]uint32(v.State), v.Rounds)
		},
	}
}

// Gift64Case is one GIFT-64 round-trip instance: a 128-bit key, a
// 64-bit plaintext, and a round count.
type Gift64Case struct {
	Key    [8]uint16
	Plain  uint64
	Rounds int
}

// Gift64Cases generates GIFT-64 key/plaintext/round triples covering
// every round count in [0, 28].
func Gift64Cases(maxRounds int) Gen[Gift64Case] {
	return Gen[Gift64Case]{
		Name: "gift64 case",
		Generate: func(r *prng.Rand) Gift64Case {
			var c Gift64Case
			for i := range c.Key {
				c.Key[i] = r.Uint16()
			}
			c.Plain = r.Uint64()
			c.Rounds = r.Intn(maxRounds + 1)
			return c
		},
		Shrink: func(v Gift64Case) []Gift64Case {
			var out []Gift64Case
			if v.Rounds > 0 {
				c := v
				c.Rounds--
				out = append(out, c)
			}
			for i, w := range v.Key {
				if w != 0 {
					c := v
					c.Key[i] = 0
					out = append(out, c)
				}
			}
			if v.Plain != 0 {
				c := v
				c.Plain = 0
				out = append(out, c)
				c = v
				c.Plain >>= 1
				out = append(out, c)
			}
			return out
		},
		Format: func(v Gift64Case) string {
			return fmt.Sprintf("key=%04x plain=%#016x rounds=%d", v.Key, v.Plain, v.Rounds)
		},
	}
}
