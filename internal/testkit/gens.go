package testkit

import (
	"fmt"

	"repro/internal/bits"
	"repro/internal/prng"
)

// This file provides the generic generators: integers, byte strings /
// bit-vectors, and float matrices. Cipher-state generators live in
// ciphers.go.
//
// Shrinking conventions: integers shrink toward zero (halving, then
// decrementing), byte strings and bit-vectors shrink by zeroing whole
// bytes and then clearing single bits, floats shrink by zeroing and
// halving entries. Every shrinker strictly reduces a finite measure
// (popcount, magnitude, nonzero count), so shrink chains terminate.

// Uint64 generates uniform 64-bit values.
func Uint64() Gen[uint64] {
	return Gen[uint64]{
		Name:     "uint64",
		Generate: func(r *prng.Rand) uint64 { return r.Uint64() },
		Shrink:   shrinkUint64,
		Format:   func(v uint64) string { return fmt.Sprintf("%#016x", v) },
	}
}

func shrinkUint64(v uint64) []uint64 {
	if v == 0 {
		return nil
	}
	out := []uint64{0, v >> 1, v - 1}
	// Clearing single set bits often isolates the failing bit position.
	for k := 63; k >= 0; k-- {
		if v>>k&1 == 1 {
			out = append(out, v&^(1<<k))
		}
	}
	return dedup(out, v)
}

// Uint32 generates uniform 32-bit values.
func Uint32() Gen[uint32] {
	return Gen[uint32]{
		Name:     "uint32",
		Generate: func(r *prng.Rand) uint32 { return r.Uint32() },
		Shrink: func(v uint32) []uint32 {
			var out []uint32
			for _, w := range shrinkUint64(uint64(v)) {
				out = append(out, uint32(w))
			}
			return out
		},
		Format: func(v uint32) string { return fmt.Sprintf("%#08x", v) },
	}
}

// IntRange generates uniform ints in [lo, hi], shrinking toward lo.
// It panics if hi < lo.
func IntRange(lo, hi int) Gen[int] {
	if hi < lo {
		panic(fmt.Sprintf("testkit: IntRange [%d, %d] is empty", lo, hi))
	}
	return Gen[int]{
		Name:     fmt.Sprintf("int[%d,%d]", lo, hi),
		Generate: func(r *prng.Rand) int { return lo + r.Intn(hi-lo+1) },
		Shrink: func(v int) []int {
			if v == lo {
				return nil
			}
			mid := lo + (v-lo)/2
			out := []int{lo, mid, v - 1}
			return dedup(out, v)
		},
	}
}

// Bytes generates uniform byte strings of length n. A bit-vector of k
// bits is Bytes((k+7)/8) under the repository's LSB-first convention.
func Bytes(n int) Gen[[]byte] {
	return Gen[[]byte]{
		Name:     fmt.Sprintf("bytes[%d]", n),
		Generate: func(r *prng.Rand) []byte { return r.Bytes(n) },
		Shrink:   ShrinkBytes,
		Format:   func(v []byte) string { return bits.Hex(v) },
	}
}

// ShrinkBytes proposes byte strings with fewer set bits: first the
// all-zero string, then each nonzero byte zeroed, then each set bit of
// the lowest nonzero byte cleared. Exported so cipher-state generators
// in this package and composite generators in tests can reuse it.
func ShrinkBytes(v []byte) [][]byte {
	if bits.PopCount(v) == 0 {
		return nil
	}
	var out [][]byte
	out = append(out, make([]byte, len(v)))
	for i, b := range v {
		if b != 0 {
			c := append([]byte(nil), v...)
			c[i] = 0
			out = append(out, c)
		}
	}
	for i, b := range v {
		if b == 0 {
			continue
		}
		for k := 0; k < 8; k++ {
			if b>>k&1 == 1 {
				c := append([]byte(nil), v...)
				c[i] &^= 1 << k
				out = append(out, c)
			}
		}
		break
	}
	return out
}

// Floats generates rows×cols matrices (as row slices, the layout
// core.Dataset and nn.FromRows use) of values drawn from scale·N(0,1).
// Shrinking zeroes rows, then halves the largest-magnitude entry.
func Floats(rows, cols int, scale float64) Gen[[][]float64] {
	return Gen[[][]float64]{
		Name: fmt.Sprintf("floats[%dx%d]", rows, cols),
		Generate: func(r *prng.Rand) [][]float64 {
			m := make([][]float64, rows)
			for i := range m {
				m[i] = make([]float64, cols)
				for j := range m[i] {
					m[i][j] = scale * r.NormFloat64()
				}
			}
			return m
		},
		Shrink: shrinkFloats,
	}
}

func shrinkFloats(v [][]float64) [][][]float64 {
	var out [][][]float64
	cloneWithout := func(ri int) [][]float64 {
		m := make([][]float64, len(v))
		for i := range v {
			m[i] = append([]float64(nil), v[i]...)
		}
		for j := range m[ri] {
			m[ri][j] = 0
		}
		return m
	}
	for i, row := range v {
		nonzero := false
		for _, x := range row {
			if x != 0 {
				nonzero = true
				break
			}
		}
		if nonzero {
			out = append(out, cloneWithout(i))
		}
	}
	// Halve the largest-magnitude entry (rounding tiny values to zero
	// so the chain terminates).
	bi, bj, best := -1, -1, 0.0
	for i, row := range v {
		for j, x := range row {
			if a := abs(x); a > best {
				bi, bj, best = i, j, a
			}
		}
	}
	if bi >= 0 {
		m := make([][]float64, len(v))
		for i := range v {
			m[i] = append([]float64(nil), v[i]...)
		}
		m[bi][bj] /= 2
		if abs(m[bi][bj]) < 1e-9 {
			m[bi][bj] = 0
		}
		out = append(out, m)
	}
	return out
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// dedup removes duplicates and the original value from shrink
// candidates, preserving order.
func dedup[V comparable](cands []V, orig V) []V {
	seen := map[V]bool{orig: true}
	out := cands[:0]
	for _, c := range cands {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}
