package testkit

import (
	"strings"
	"testing"
)

// TestStandardKATs is the conformance suite: every pinned and official
// vector for all eight primitives must pass through the one harness.
func TestStandardKATs(t *testing.T) {
	if failed := RunKATs(t, StandardKATs()); failed != 0 {
		t.Fatalf("%d conformance vectors failed", failed)
	}
}

// TestStandardKATsCoverAllPrimitives: the suite must exercise every
// distinguisher target; losing one (e.g. in a refactor) is itself a
// failure.
func TestStandardKATsCoverAllPrimitives(t *testing.T) {
	want := []string{"gimli", "speck", "gift", "salsa", "trivium", "simon", "simeck", "chaskey"}
	have := map[string]bool{}
	for _, k := range StandardKATs() {
		have[k.Primitive] = true
	}
	for _, p := range want {
		if !have[p] {
			t.Errorf("conformance suite has no vectors for %s", p)
		}
	}
}

// TestOfficialGimliVectorPresent: the acceptance-criteria vector — the
// designers' full-permutation KAT — must be in the suite and marked
// official.
func TestOfficialGimliVectorPresent(t *testing.T) {
	for _, k := range StandardKATs() {
		if k.Primitive == "gimli" && k.Name == "permutation-24r" {
			if !strings.HasPrefix(k.Source, "official") {
				t.Fatalf("gimli permutation vector not marked official: %q", k.Source)
			}
			return
		}
	}
	t.Fatal("official gimli permutation vector missing from the suite")
}

// TestOfficialSweepVectorsPresent: each new-cipher-sweep primitive must
// pass at least one published (official) vector, not just pinned ones,
// before any of its accuracy numbers are trusted.
func TestOfficialSweepVectorsPresent(t *testing.T) {
	want := map[string]string{
		"simon":   "simon32-64",
		"simeck":  "simeck32-64",
		"chaskey": "mac-empty",
	}
	for prim, name := range want {
		found := false
		for _, k := range StandardKATs() {
			if k.Primitive == prim && k.Name == name {
				found = true
				if !strings.HasPrefix(k.Source, "official") {
					t.Errorf("%s/%s not marked official: %q", prim, name, k.Source)
				}
			}
		}
		if !found {
			t.Errorf("official %s vector %q missing from the suite", prim, name)
		}
	}
}

// TestRunKATsDetectsCorruption: a flipped bit in an expected output
// must be caught and reported with the got/want hex context.
func TestRunKATsDetectsCorruption(t *testing.T) {
	kats := StandardKATs()
	// Corrupt the last hex digit of every Want in a copy of the suite.
	for i := range kats {
		w := kats[i].Want
		if w == "" {
			continue
		}
		last := w[len(w)-1]
		repl := byte('0')
		if last == '0' {
			repl = '1'
		}
		kats[i].Want = w[:len(w)-1] + string(repl)
	}
	rec := &Recorder{}
	failed := RunKATs(rec, kats)
	if failed != len(kats) {
		t.Fatalf("corrupted suite: %d/%d vectors caught", failed, len(kats))
	}
	for _, msg := range rec.Failures {
		if !strings.Contains(msg, "mismatch") || !strings.Contains(msg, "want:") {
			t.Fatalf("failure report lacks got/want context: %s", msg)
		}
	}
}

// TestRunKATsRejectsBadHex: malformed vectors fail loudly instead of
// silently comparing empty slices.
func TestRunKATsRejectsBadHex(t *testing.T) {
	rec := &Recorder{}
	failed := RunKATs(rec, []KAT{
		{Primitive: "x", Name: "bad-in", In: "zz", Want: "00",
			Apply: func(in []byte) ([]byte, error) { return in, nil }},
		{Primitive: "x", Name: "bad-want", In: "00", Want: "zz",
			Apply: func(in []byte) ([]byte, error) { return in, nil }},
	})
	if failed != 2 || len(rec.Failures) != 2 {
		t.Fatalf("bad hex not rejected: failed=%d reports=%v", failed, rec.Failures)
	}
}
