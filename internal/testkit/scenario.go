package testkit

import (
	"fmt"

	"repro/internal/bits"
	"repro/internal/core"
	"repro/internal/prng"
)

// ScenarioDraw is one sampled evaluation of a core.Scenario: which
// class to sample (Classes() selects RandomSample) and the PRNG seed
// the sample is drawn under.
type ScenarioDraw struct {
	Class int
	Seed  uint64
}

// ScenarioDraws generates draws covering every class of s plus the
// random baseline. Shrinking lowers the class index and zeroes seed
// bits, so a contract violation reports the smallest class and seed
// that trigger it.
func ScenarioDraws(s core.Scenario) Gen[ScenarioDraw] {
	return Gen[ScenarioDraw]{
		Name: fmt.Sprintf("draw(%s)", s.Name()),
		Generate: func(r *prng.Rand) ScenarioDraw {
			return ScenarioDraw{Class: r.Intn(s.Classes() + 1), Seed: r.Uint64()}
		},
		Shrink: func(v ScenarioDraw) []ScenarioDraw {
			var out []ScenarioDraw
			if v.Class > 0 {
				out = append(out, ScenarioDraw{Class: v.Class - 1, Seed: v.Seed})
			}
			for _, s := range shrinkUint64(v.Seed) {
				out = append(out, ScenarioDraw{Class: v.Class, Seed: s})
			}
			return out
		},
		Format: func(v ScenarioDraw) string {
			return fmt.Sprintf("class=%d seed=%#x", v.Class, v.Seed)
		},
	}
}

// CheckScenario verifies the core.Scenario contract for s under the
// property runner: Sample and RandomSample must return feature vectors
// of exactly FeatureLen entries, every entry in {0, 1}. The draw with
// Class == Classes() exercises RandomSample; the sample itself is
// drawn from prng.NewStream(draw.Seed, 0) so failures replay from the
// printed counterexample.
//
// When s also implements core.BatchScenario, its packed SampleBatch
// fast path is held to that interface's contract on every class draw:
// from an identical generator it must produce exactly the bits of
// Sample, consume exactly as much generator state, and leave the
// trailing bits of the last packed word zero.
//
// When s also implements core.RelatedKeyScenario, its declared
// generator layout is audited on every class draw: Sample must consume
// exactly DrawWords(class) 64-bit outputs, so a related-key path that
// draws its key or plaintext words differently from its specification
// fails conformance even though the two sampling paths agree with each
// other.
func CheckScenario(t T, s core.Scenario, cfg Config) *Failure[ScenarioDraw] {
	t.Helper()
	bs, _ := s.(core.BatchScenario)
	rk, _ := s.(core.RelatedKeyScenario)
	words := bits.PackedWords(s.FeatureLen())
	packed := make([]uint64, words)
	want := make([]uint64, words)
	prop := func(d ScenarioDraw) error {
		r := prng.NewStream(d.Seed, 0)
		var vec []float64
		if d.Class == s.Classes() {
			vec = s.RandomSample(r)
		} else {
			vec = s.Sample(r, d.Class)
		}
		if len(vec) != s.FeatureLen() {
			return fmt.Errorf("feature vector has %d entries, FeatureLen is %d", len(vec), s.FeatureLen())
		}
		for i, x := range vec {
			if x != 0 && x != 1 {
				return fmt.Errorf("feature %d is %v, want 0 or 1", i, x)
			}
		}
		if bs == nil || d.Class == s.Classes() {
			return nil
		}
		rb := prng.NewStream(d.Seed, 0)
		for i := range packed {
			packed[i] = ^uint64(0) // dirty: SampleBatch must overwrite fully
		}
		bs.SampleBatch(rb, d.Class, packed)
		bits.PackFloats(want, vec)
		for i := range packed {
			if packed[i] != want[i] {
				return fmt.Errorf("SampleBatch word %d is %#x, Sample packs to %#x", i, packed[i], want[i])
			}
		}
		probe := r.Uint64()
		if probe != rb.Uint64() {
			return fmt.Errorf("SampleBatch consumed different generator state than Sample")
		}
		if rk != nil {
			declared := rk.DrawWords(d.Class)
			if declared < 0 {
				return fmt.Errorf("DrawWords(%d) is negative (%d)", d.Class, declared)
			}
			rc := prng.NewStream(d.Seed, 0)
			for i := 0; i < declared; i++ {
				rc.Uint64()
			}
			if rc.Uint64() != probe {
				return fmt.Errorf("Sample consumed a different number of generator words than the declared layout DrawWords(%d) = %d", d.Class, declared)
			}
		}
		return nil
	}
	return CheckConfig(t, fmt.Sprintf("scenario-contract/%s", s.Name()), ScenarioDraws(s), prop, cfg)
}
