package testkit

import (
	"math"

	"repro/internal/gift"
	"repro/internal/prng"
	"repro/internal/stats"
	"repro/internal/trails"
)

// Statistical assertions: sampled probabilities checked against exact
// values at binomial confidence bounds. A sampled estimate p̂ of a true
// probability p over n trials has standard deviation
// stats.BinomialSigma(p, n); asserting |p̂ − p| ≤ kσ turns "the numbers
// look close" into a test with a known false-positive rate (k = 4 ↦
// ~6·10⁻⁵ two-sided).

// DefaultSigmas is the bound the conformance suite runs at.
const DefaultSigmas = 4.0

// AssertBinomial checks a sampled success fraction against the exact
// probability p at a sigmas-σ binomial bound over n trials. When p is
// 0 or 1 the distribution is degenerate (σ = 0) and the observation
// must match exactly. It reports failures through t and returns
// whether the assertion held.
func AssertBinomial(t T, name string, observed, p float64, n int, sigmas float64) bool {
	t.Helper()
	sigma := stats.BinomialSigma(p, n)
	if sigma == 0 {
		if observed != p {
			t.Errorf("testkit: %s: observed %v but probability is degenerate at %v (n=%d)",
				name, observed, p, n)
			return false
		}
		return true
	}
	if diff := math.Abs(observed - p); diff > sigmas*sigma {
		t.Errorf("testkit: %s: observed %.6f, exact %.6f, |Δ|=%.3g exceeds %.1fσ=%.3g (n=%d)",
			name, observed, p, diff, sigmas, sigmas*sigma, n)
		return false
	}
	return true
}

// DPCase is one sampled-vs-exact differential-probability check on the
// GIMLI permutation: the input difference, the expected difference
// after Rounds rounds, and the exact Equation-2 weight of the
// connecting trail.
type DPCase struct {
	Name   string
	Rounds int
	Din    trails.Delta
	Dout   trails.Delta
	Weight float64 // exact trail weight; DP = 2^-Weight
}

// GimliTrailCases returns the 1–3-round cases built from the
// constructive Table 1 trail. The weights are recomputed through
// trails.ExactTrailWeight rather than hardcoded, so the cases stay
// honest if the trail constants change.
func GimliTrailCases() []DPCase {
	full := []trails.Delta{
		trails.TwoRoundTrailInput,
		trails.OneRoundTrailOutput,
		trails.TwoRoundTrailOutput,
		trails.ThreeRoundTrailOutput,
	}
	names := []string{"gimli-1r", "gimli-2r", "gimli-3r"}
	cases := make([]DPCase, 0, 3)
	for rounds := 1; rounds <= 3; rounds++ {
		prefix := full[:rounds+1]
		w, ok := trails.ExactTrailWeight(prefix, 24)
		if !ok {
			panic("testkit: constructive GIMLI trail became impossible")
		}
		cases = append(cases, DPCase{
			Name: names[rounds-1], Rounds: rounds,
			Din: full[0], Dout: full[rounds], Weight: w,
		})
	}
	return cases
}

// CrossValidateGimliDP samples each GimliTrailCase with `samples`
// random states and asserts the sampled differential probability
// against 2^-Weight at a sigmas-σ binomial bound. Case i samples from
// prng.NewStream(seed, i), so a failure is reproducible from the seed
// alone. It returns the number of failing cases.
func CrossValidateGimliDP(t T, samples int, seed uint64, sigmas float64) int {
	t.Helper()
	failed := 0
	for i, c := range GimliTrailCases() {
		r := prng.NewStream(seed, uint64(i))
		sampled := trails.EstimateDP(c.Din, c.Dout, c.Rounds, samples, r)
		exact := math.Pow(2, -c.Weight)
		if !AssertBinomial(t, c.Name, sampled, exact, samples, sigmas) {
			failed++
		}
	}
	return failed
}

// CrossValidateToyDP samples the §2.1 toy-cipher characteristic with
// `samples` random inputs and asserts the sampled probability of the
// full two-round differential against the exhaustively computed exact
// value (4/256 for the paper characteristic — the probability
// Equation 2's Markov estimate gets wrong, which is the paper's
// motivating observation). Returns whether the assertion held.
func CrossValidateToyDP(t T, c gift.Characteristic, samples int, seed uint64, sigmas float64) bool {
	t.Helper()
	exact := gift.Exhaustive(c).ExactProb
	r := prng.NewStream(seed, 0)
	hits := 0
	for i := 0; i < samples; i++ {
		v := r.Byte()
		if gift.ToyEncrypt(v)^gift.ToyEncrypt(v^c.DY1) == c.DW2 {
			hits++
		}
	}
	sampled := float64(hits) / float64(samples)
	return AssertBinomial(t, "toy-cipher", sampled, exact, samples, sigmas)
}
