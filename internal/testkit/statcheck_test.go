package testkit

import (
	"math"
	"testing"

	"repro/internal/gift"
)

// TestGimliTrailCases: the constructive trail must yield exactly the
// Table 1 weights 0, 0, 2 for 1–3 rounds.
func TestGimliTrailCases(t *testing.T) {
	cases := GimliTrailCases()
	if len(cases) != 3 {
		t.Fatalf("want 3 cases, got %d", len(cases))
	}
	want := []float64{0, 0, 2}
	for i, c := range cases {
		if c.Rounds != i+1 {
			t.Errorf("case %d covers %d rounds", i, c.Rounds)
		}
		if c.Weight != want[i] {
			t.Errorf("%s: weight %v, want %v", c.Name, c.Weight, want[i])
		}
	}
}

// TestCrossValidateGimliDP is the acceptance-criteria check: sampled
// differential probabilities for gimli 1–3 rounds agree with the exact
// trail weights at a 4σ binomial bound.
func TestCrossValidateGimliDP(t *testing.T) {
	if failed := CrossValidateGimliDP(t, 4096, 2020, DefaultSigmas); failed != 0 {
		t.Fatalf("%d gimli DP cross-validations failed", failed)
	}
}

// TestCrossValidateToyDP: the §2.1 toy-cipher characteristic sampled
// against the exhaustive exact probability (4/256).
func TestCrossValidateToyDP(t *testing.T) {
	rep := gift.Exhaustive(gift.PaperCharacteristic)
	if rep.ExactProb != 4.0/256 {
		t.Fatalf("exhaustive exact probability is %v, want 4/256", rep.ExactProb)
	}
	if !CrossValidateToyDP(t, gift.PaperCharacteristic, 8192, 2020, DefaultSigmas) {
		t.Fatal("toy cipher cross-validation failed")
	}
}

// TestCrossValidateDeterministic: the same seed produces bit-identical
// outcomes (no reliance on global PRNG state or iteration order).
func TestCrossValidateDeterministic(t *testing.T) {
	a, c := &Recorder{}, &Recorder{}
	CrossValidateGimliDP(a, 512, 7, DefaultSigmas)
	CrossValidateGimliDP(c, 512, 7, DefaultSigmas)
	if len(a.Failures) != len(c.Failures) {
		t.Fatalf("same seed, different outcomes: %v vs %v", a.Failures, c.Failures)
	}
}

// TestAssertBinomialBounds: the assertion accepts deviations inside
// the bound, rejects outside, and treats degenerate p exactly.
func TestAssertBinomialBounds(t *testing.T) {
	n := 10000
	p := 0.25
	sigma := math.Sqrt(p * (1 - p) / float64(n))
	rec := &Recorder{}
	if !AssertBinomial(rec, "inside", p+3*sigma, p, n, 4) {
		t.Fatal("3σ deviation rejected at a 4σ bound")
	}
	if AssertBinomial(rec, "outside", p+5*sigma, p, n, 4) {
		t.Fatal("5σ deviation accepted at a 4σ bound")
	}
	if !AssertBinomial(rec, "degenerate-ok", 1, 1, n, 4) {
		t.Fatal("exact match of degenerate p=1 rejected")
	}
	if AssertBinomial(rec, "degenerate-bad", 0.9999, 1, n, 4) {
		t.Fatal("deviation from degenerate p=1 accepted")
	}
	if len(rec.Failures) != 2 {
		t.Fatalf("want 2 recorded failures, got %v", rec.Failures)
	}
}
