// Package testkit is the repository's property-based testing and
// conformance subsystem. Everything the paper's pipeline claims rests
// on the primitive implementations and the feature encoding being
// correct — a single bit-packing or S-box bug silently turns a
// "distinguisher" into a bug detector — so this package provides the
// shared verification layer every other package regresses against:
//
//   - Check, a quickcheck-style property runner with typed generators
//     and shrinkers (gens.go, ciphers.go), seeded through internal/prng
//     so every counterexample is reproducible from the printed seed and
//     stream index;
//   - a known-answer-test table format and the cross-cipher conformance
//     suite wiring published vectors through one harness for all five
//     primitives (kat.go);
//   - statistical assertion helpers that cross-validate sampled
//     differential probabilities against exact results from
//     internal/ddt and internal/trails at binomial confidence bounds
//     (statcheck.go);
//   - the core.Scenario contract check used by every registered
//     distinguisher target (scenario.go).
//
// The package is stdlib-only and deliberately does not import the
// testing package: the minimal T interface below is satisfied by
// *testing.T and by lightweight recorders, which is how testkit tests
// its own failure reporting.
package testkit

import (
	"fmt"

	"repro/internal/prng"
)

// T is the minimal testing surface the harnesses report through.
// *testing.T satisfies it; so does the Recorder used to test testkit
// itself.
type T interface {
	Helper()
	Errorf(format string, args ...any)
	Logf(format string, args ...any)
}

// DefaultSeed is the base seed properties run under when the config
// does not override it.
const DefaultSeed = 0x7e57c0de

// Config controls one Check run.
type Config struct {
	// Seed is the base PRNG seed (DefaultSeed if zero). Iteration i
	// draws its value from prng.NewStream(Seed, i), so a single
	// iteration can be replayed in isolation.
	Seed uint64
	// Count is the number of iterations (default 200).
	Count int
	// Start is the first stream index. To reproduce a reported
	// counterexample, set Start to the printed stream and Count to 1.
	Start uint64
	// MaxShrink bounds the number of property evaluations spent
	// shrinking a counterexample (default 500).
	MaxShrink int
}

func (c *Config) setDefaults() {
	if c.Seed == 0 {
		c.Seed = DefaultSeed
	}
	if c.Count <= 0 {
		c.Count = 200
	}
	if c.MaxShrink <= 0 {
		c.MaxShrink = 500
	}
}

// Gen is a typed generator with an optional shrinker. Generate must be
// a deterministic function of the provided PRNG. Shrink, if non-nil,
// proposes strictly "smaller" candidate values in preference order; it
// must terminate (every chain of accepted candidates must be finite),
// which all the shrinkers in this package guarantee by only clearing
// bits, zeroing elements, or moving integers toward a fixed point.
type Gen[V any] struct {
	Name     string
	Generate func(r *prng.Rand) V
	Shrink   func(v V) []V
	// Format renders a value in failure reports (%#v if nil).
	Format func(v V) string
}

func (g Gen[V]) format(v V) string {
	if g.Format != nil {
		return g.Format(v)
	}
	return fmt.Sprintf("%#v", v)
}

// Failure describes a falsified property: the originally drawn
// counterexample, the shrunk one, and the replay coordinates.
type Failure[V any] struct {
	Name   string
	Seed   uint64
	Stream uint64 // stream index of the failing draw
	Value  V      // the value as drawn
	Err    error  // the property's error on Value

	Shrunk      V     // the minimal failing value found (== Value if no progress)
	ShrunkErr   error // the property's error on Shrunk
	ShrinkSteps int   // accepted shrink steps (0 if no progress)
}

// Check runs prop against Count values drawn from g under the default
// configuration and reports the first failure through t (shrunk if the
// generator supports it). It returns nil on success, so tests can
// assert on the failure structurally.
func Check[V any](t T, name string, g Gen[V], prop func(v V) error) *Failure[V] {
	return CheckConfig(t, name, g, prop, Config{})
}

// CheckConfig is Check with an explicit configuration.
//
// Determinism contract: iteration i evaluates prop on
// g.Generate(prng.NewStream(cfg.Seed, i)) — the value depends only on
// (Seed, i), never on iteration order or on how much randomness other
// iterations consumed. The failure report prints Seed and the stream
// index; replaying with Config{Seed: seed, Start: stream, Count: 1}
// regenerates the identical counterexample.
func CheckConfig[V any](t T, name string, g Gen[V], prop func(v V) error, cfg Config) *Failure[V] {
	t.Helper()
	cfg.setDefaults()
	for i := uint64(0); i < uint64(cfg.Count); i++ {
		stream := cfg.Start + i
		v := g.Generate(prng.NewStream(cfg.Seed, stream))
		err := prop(v)
		if err == nil {
			continue
		}
		f := &Failure[V]{
			Name: name, Seed: cfg.Seed, Stream: stream,
			Value: v, Err: err, Shrunk: v, ShrunkErr: err,
		}
		shrink(g, prop, f, cfg.MaxShrink)
		t.Errorf("testkit: property %q falsified (seed=%#x stream=%d): %v\n"+
			"  counterexample: %s\n"+
			"  shrunk (%d steps): %s\n"+
			"  reproduce with testkit.Config{Seed: %#x, Start: %d, Count: 1}",
			name, f.Seed, f.Stream, f.Err,
			g.format(f.Value), f.ShrinkSteps, g.format(f.Shrunk),
			f.Seed, f.Stream)
		return f
	}
	return nil
}

// shrink greedily minimizes f.Shrunk: at each step it takes the first
// candidate from g.Shrink that still falsifies the property. The
// budget bounds total property evaluations, so even a pathological
// shrinker cannot hang a test.
func shrink[V any](g Gen[V], prop func(v V) error, f *Failure[V], budget int) {
	if g.Shrink == nil {
		return
	}
	for budget > 0 {
		progressed := false
		for _, cand := range g.Shrink(f.Shrunk) {
			budget--
			if err := prop(cand); err != nil {
				f.Shrunk, f.ShrunkErr = cand, err
				f.ShrinkSteps++
				progressed = true
				break
			}
			if budget <= 0 {
				return
			}
		}
		if !progressed {
			return
		}
	}
}

// Recorder is a T implementation that captures failure reports instead
// of failing a real test. testkit's own tests use it to assert that a
// deliberately broken property is caught, shrunk, and reported
// reproducibly; downstream packages can use it to test their own
// harness wiring.
type Recorder struct {
	Failures []string
	Logs     []string
}

// Helper is a no-op.
func (r *Recorder) Helper() {}

// Errorf records a failure report.
func (r *Recorder) Errorf(format string, args ...any) {
	r.Failures = append(r.Failures, fmt.Sprintf(format, args...))
}

// Logf records a log line.
func (r *Recorder) Logf(format string, args ...any) {
	r.Logs = append(r.Logs, fmt.Sprintf(format, args...))
}

// Failed reports whether any failure was recorded.
func (r *Recorder) Failed() bool { return len(r.Failures) > 0 }
