package testkit

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/bits"
	"repro/internal/prng"
)

// TestCheckPassingProperty: a true property reports nothing.
func TestCheckPassingProperty(t *testing.T) {
	rec := &Recorder{}
	f := Check(rec, "xor-self-cancels", Uint64(), func(v uint64) error {
		if v^v != 0 {
			return errors.New("xor broken")
		}
		return nil
	})
	if f != nil || rec.Failed() {
		t.Fatalf("true property reported failure: %+v %v", f, rec.Failures)
	}
}

// TestCheckDeterministic: the same seed yields the identical
// counterexample, twice — and a different seed yields a different
// (still failing) draw. The property is deliberately broken: it
// rejects any value with bit 3 set.
func TestCheckDeterministic(t *testing.T) {
	broken := func(v uint64) error {
		if v&0x8 != 0 {
			return errors.New("bit 3 set")
		}
		return nil
	}
	run := func(seed uint64) *Failure[uint64] {
		rec := &Recorder{}
		f := CheckConfig(rec, "bit3", Uint64(), broken, Config{Seed: seed})
		if f == nil || !rec.Failed() {
			t.Fatalf("broken property not falsified under seed %#x", seed)
		}
		return f
	}
	a, b := run(1), run(1)
	if a.Value != b.Value || a.Stream != b.Stream || a.Shrunk != b.Shrunk {
		t.Fatalf("same seed, different counterexamples: %+v vs %+v", a, b)
	}
	c := run(2)
	if c.Value == a.Value && c.Stream == a.Stream {
		t.Fatalf("different seeds drew the identical failing iteration")
	}
}

// TestCheckReplayFromReport: the (Seed, Stream) printed in a failure
// report regenerates the identical counterexample with Count=1 — the
// reproduction recipe the report tells the user to follow.
func TestCheckReplayFromReport(t *testing.T) {
	broken := func(v uint64) error {
		if v&0x8 != 0 {
			return errors.New("bit 3 set")
		}
		return nil
	}
	rec := &Recorder{}
	orig := CheckConfig(rec, "bit3", Uint64(), broken, Config{Seed: 7})
	if orig == nil {
		t.Fatal("broken property not falsified")
	}
	replayRec := &Recorder{}
	replay := CheckConfig(replayRec, "bit3", Uint64(), broken,
		Config{Seed: orig.Seed, Start: orig.Stream, Count: 1})
	if replay == nil {
		t.Fatal("replay did not reproduce the failure")
	}
	if replay.Value != orig.Value || replay.Shrunk != orig.Shrunk {
		t.Fatalf("replay drew %#x (shrunk %#x), original was %#x (shrunk %#x)",
			replay.Value, replay.Shrunk, orig.Value, orig.Shrunk)
	}
	if !strings.Contains(rec.Failures[0], fmt.Sprintf("Start: %d", orig.Stream)) {
		t.Fatalf("failure report does not contain the replay recipe: %s", rec.Failures[0])
	}
}

// TestCheckShrinksToMinimal: the bit-3 property must shrink all the
// way to the single-bit witness 0x8 — the smallest uint64 that
// falsifies it — demonstrating that shrinking works end to end.
func TestCheckShrinksToMinimal(t *testing.T) {
	rec := &Recorder{}
	f := Check(rec, "bit3", Uint64(), func(v uint64) error {
		if v&0x8 != 0 {
			return errors.New("bit 3 set")
		}
		return nil
	})
	if f == nil {
		t.Fatal("broken property not falsified")
	}
	if f.Shrunk != 0x8 {
		t.Fatalf("shrunk counterexample is %#x, want the minimal witness 0x8 (from %#x in %d steps)",
			f.Shrunk, f.Value, f.ShrinkSteps)
	}
	if f.ShrinkSteps == 0 {
		t.Fatal("no shrink steps recorded despite a shrinkable counterexample")
	}
	if f.ShrunkErr == nil {
		t.Fatal("shrunk value carries no error")
	}
}

// TestShrinkRespectsBudget: a pathological property that fails on
// everything must stop after MaxShrink evaluations.
func TestShrinkRespectsBudget(t *testing.T) {
	evals := 0
	rec := &Recorder{}
	CheckConfig(rec, "always-fails", Uint64(), func(v uint64) error {
		evals++
		return errors.New("no")
	}, Config{Count: 1, MaxShrink: 50})
	// 1 initial evaluation + at most 50 shrink evaluations.
	if evals > 51 {
		t.Fatalf("shrinking used %d evaluations, budget was 50", evals)
	}
}

// TestCheckWithoutShrinker: generators without a Shrink function still
// report the raw counterexample.
func TestCheckWithoutShrinker(t *testing.T) {
	g := Gen[uint64]{
		Name:     "no-shrink",
		Generate: func(r *prng.Rand) uint64 { return r.Uint64() | 1 },
	}
	rec := &Recorder{}
	f := Check(rec, "odd", g, func(v uint64) error { return errors.New("always") })
	if f == nil {
		t.Fatal("property not falsified")
	}
	if f.Shrunk != f.Value || f.ShrinkSteps != 0 {
		t.Fatalf("shrink ran without a shrinker: %+v", f)
	}
}

// TestShrinkersTerminateAndReduce: every shrinker's candidates must
// strictly reduce a finite measure, so chains terminate. Checked by
// walking greedy chains from random starting points.
func TestShrinkersTerminateAndReduce(t *testing.T) {
	r := prng.New(99)
	for i := 0; i < 50; i++ {
		v := r.Uint64()
		steps := 0
		for v != 0 {
			cands := shrinkUint64(v)
			if len(cands) == 0 {
				break
			}
			next := cands[0]
			if popcount64(next) >= popcount64(v) && next >= v {
				t.Fatalf("uint64 shrink did not reduce: %#x -> %#x", v, next)
			}
			v = next
			if steps++; steps > 200 {
				t.Fatal("uint64 shrink chain did not terminate")
			}
		}
	}
	b := r.Bytes(16)
	steps := 0
	for bits.PopCount(b) > 0 {
		cands := ShrinkBytes(b)
		if len(cands) == 0 {
			break
		}
		// Candidates after the first (all-zero) proposal reduce by one
		// byte or one bit; take the last to walk the slowest chain.
		next := cands[len(cands)-1]
		if bits.PopCount(next) >= bits.PopCount(b) {
			t.Fatalf("bytes shrink did not reduce popcount: %x -> %x", b, next)
		}
		b = next
		if steps++; steps > 200 {
			t.Fatal("bytes shrink chain did not terminate")
		}
	}
}

func popcount64(v uint64) int {
	n := 0
	for ; v != 0; v &= v - 1 {
		n++
	}
	return n
}

// TestBytesGenerator: generated strings have the requested length and
// are a pure function of the PRNG stream.
func TestBytesGenerator(t *testing.T) {
	g := Bytes(32)
	a := g.Generate(prng.NewStream(5, 9))
	b := g.Generate(prng.NewStream(5, 9))
	if len(a) != 32 || !bits.Equal(a, b) {
		t.Fatalf("Bytes generator not deterministic: %x vs %x", a, b)
	}
}

// TestIntRange: values stay in range, shrink moves toward lo, and an
// empty range panics.
func TestIntRange(t *testing.T) {
	g := IntRange(3, 17)
	r := prng.New(1)
	for i := 0; i < 1000; i++ {
		v := g.Generate(r)
		if v < 3 || v > 17 {
			t.Fatalf("IntRange produced %d outside [3, 17]", v)
		}
	}
	for _, c := range g.Shrink(17) {
		if c < 3 || c >= 17 {
			t.Fatalf("shrink candidate %d escapes [lo, v)", c)
		}
	}
	if g.Shrink(3) != nil {
		t.Fatal("lo must not shrink further")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("empty IntRange did not panic")
		}
	}()
	IntRange(5, 4)
}

// TestFloatsGenerator: shape, determinism, and shrink behavior.
func TestFloatsGenerator(t *testing.T) {
	g := Floats(3, 4, 1.0)
	m := g.Generate(prng.NewStream(11, 0))
	if len(m) != 3 || len(m[0]) != 4 {
		t.Fatalf("Floats shape %dx%d, want 3x4", len(m), len(m[0]))
	}
	m2 := g.Generate(prng.NewStream(11, 0))
	for i := range m {
		for j := range m[i] {
			if m[i][j] != m2[i][j] {
				t.Fatal("Floats generator not deterministic")
			}
		}
	}
	steps := 0
	for cands := g.Shrink(m); len(cands) > 0; cands = g.Shrink(m) {
		m = cands[len(cands)-1]
		if steps++; steps > 10000 {
			t.Fatal("Floats shrink chain did not terminate")
		}
	}
	for i := range m {
		for j := range m[i] {
			if m[i][j] != 0 {
				t.Fatalf("fully shrunk matrix still has nonzero entry %v", m[i][j])
			}
		}
	}
}

// TestRecorder: the Recorder captures reports and Logf lines.
func TestRecorder(t *testing.T) {
	rec := &Recorder{}
	if rec.Failed() {
		t.Fatal("fresh recorder reports failure")
	}
	rec.Errorf("bad %d", 1)
	rec.Logf("note %d", 2)
	if !rec.Failed() || len(rec.Failures) != 1 || rec.Failures[0] != "bad 1" {
		t.Fatalf("recorder failures: %v", rec.Failures)
	}
	if len(rec.Logs) != 1 || rec.Logs[0] != "note 2" {
		t.Fatalf("recorder logs: %v", rec.Logs)
	}
}

// TestCheckReportsThroughTestingT: Check wired to a real *testing.T
// (via a subtest that expects failure is not possible without failing
// the suite, so this only checks the success path compiles and runs).
func TestCheckReportsThroughTestingT(t *testing.T) {
	if f := Check(t, "trivial", IntRange(0, 10), func(int) error { return nil }); f != nil {
		t.Fatalf("unexpected failure: %+v", f)
	}
}
