package trails

// Exact differential-transition probabilities for the GIMLI SP-box.
//
// The SP-box is quadratic: for a fixed input difference (a, b, c) on
// the rotated words (x, y, z), the output difference is
//
//	Δout = const(a,b,c) ⊕ M(a,b,c)·state
//
// with M linear in the 96 state bits. Over a uniform state, a target
// output difference therefore has probability exactly 2^−rank(M) when
// the system M·s = Δout ⊕ const is consistent and 0 otherwise.
// Expanding the three output words (≪ k drops high bits):
//
//	Δn2 = a ⊕ (c≪1) ⊕ ((y&c ⊕ b&z ⊕ b&c) ≪ 2)
//	Δn1 = b ⊕ a ⊕ ((a ⊕ c ⊕ x&c ⊕ a&z ⊕ a&c) ≪ 1)
//	Δn0 = c ⊕ b ⊕ ((x&b ⊕ a&y ⊕ a&b) ≪ 3)
//
// Summing per-round transition weights across rounds is exactly the
// Markov/Equation-2 computation of the paper — the quantity that is
// *unreliable* for the unkeyed GIMLI (Section 2.1's point), which this
// package makes measurable by contrast with EstimateDP.

import (
	"fmt"
	"math"

	"repro/internal/bits"
	"repro/internal/gf2"
	"repro/internal/gimli"
)

// spBoxSystem builds the GF(2) system for one column: 96 equations
// (output-difference bits n0, n1, n2) over 96 variables (state bits
// x, y, z), plus the constant vector.
func spBoxSystem(a, b, c uint32) (*gf2.Matrix, [96]int) {
	m := gf2.NewMatrix(96, 96)
	// Variable indices: x_i = i, y_i = 32+i, z_i = 64+i.
	for k := 0; k < 32; k++ {
		// Δn0 bit k (equation k): (x&b ⊕ a&y) ≪ 3.
		if i := k - 3; i >= 0 {
			if b>>i&1 == 1 {
				m.Set(k, i, 1) // x_i
			}
			if a>>i&1 == 1 {
				m.Set(k, 32+i, 1) // y_i
			}
		}
		// Δn1 bit k (equation 32+k): (x&c ⊕ a&z) ≪ 1.
		if i := k - 1; i >= 0 {
			if c>>i&1 == 1 {
				m.Set(32+k, i, 1) // x_i
			}
			if a>>i&1 == 1 {
				m.Set(32+k, 64+i, 1) // z_i
			}
		}
		// Δn2 bit k (equation 64+k): (y&c ⊕ b&z) ≪ 2.
		if i := k - 2; i >= 0 {
			if c>>i&1 == 1 {
				m.Set(64+k, 32+i, 1) // y_i
			}
			if b>>i&1 == 1 {
				m.Set(64+k, 64+i, 1) // z_i
			}
		}
	}

	var konst [96]int
	n0c := c ^ b ^ ((a & b) << 3)
	n1c := b ^ a ^ ((a ^ c ^ (a & c)) << 1)
	n2c := a ^ (c << 1) ^ ((b & c) << 2)
	for k := 0; k < 32; k++ {
		konst[k] = int(n0c >> k & 1)
		konst[32+k] = int(n1c >> k & 1)
		konst[64+k] = int(n2c >> k & 1)
	}
	return m, konst
}

// SPBoxExactDP returns the exact differential probability weight
// (−log2 DP) of the SP-box transition (a, b, c) → (d0, d1, d2) in the
// rotated coordinates, and whether the transition is possible at all.
// Weight 0 means a deterministic transition.
func SPBoxExactDP(a, b, c, d0, d1, d2 uint32) (float64, bool) {
	m, konst := spBoxSystem(a, b, c)
	rhs := make([]int, 96)
	for k := 0; k < 32; k++ {
		rhs[k] = int(d0>>k&1) ^ konst[k]
		rhs[32+k] = int(d1>>k&1) ^ konst[32+k]
		rhs[64+k] = int(d2>>k&1) ^ konst[64+k]
	}
	res := m.Solve(rhs)
	if !res.Consistent {
		return math.Inf(1), false
	}
	return float64(res.Rank), true
}

// SPBoxBestTransition returns the minimum transition weight from the
// rotated-coordinate input difference (a, b, c) — which equals
// rank(M), shared by every reachable output — together with the
// canonical best output difference obtained from the all-zero state
// (the pure constant part).
func SPBoxBestTransition(a, b, c uint32) (weight float64, d0, d1, d2 uint32) {
	m, konst := spBoxSystem(a, b, c)
	rank := m.Rank()
	for k := 0; k < 32; k++ {
		d0 |= uint32(konst[k]) << k
		d1 |= uint32(konst[32+k]) << k
		d2 |= uint32(konst[64+k]) << k
	}
	return float64(rank), d0, d1, d2
}

// rotateIn converts a column's state-coordinate difference into the
// rotated (x, y, z) coordinates the SP-box operates in.
func rotateIn(ds0, ds1, ds2 uint32) (a, b, c uint32) {
	return bits.RotL32(ds0, 24), bits.RotL32(ds1, 9), ds2
}

// undoLinearLayer maps a post-round state difference back through the
// round's linear layer (swaps are involutions; constants vanish on
// differences), yielding the difference right after the SP-box layer.
func undoLinearLayer(d Delta, round int) Delta {
	switch round & 3 {
	case 0: // small swap
		d[0], d[1] = d[1], d[0]
		d[2], d[3] = d[3], d[2]
	case 2: // big swap
		d[0], d[2] = d[2], d[0]
		d[1], d[3] = d[3], d[1]
	}
	return d
}

// ExactRoundTransitionWeight computes the exact Markov weight of one
// full GIMLI round transition din → dout at round number `round`
// (24 … 1): the sum of the four columns' SP-box weights. It returns
// +Inf, false if any column transition is impossible.
func ExactRoundTransitionWeight(din, dout Delta, round int) (float64, bool) {
	target := undoLinearLayer(dout, round)
	total := 0.0
	for j := 0; j < 4; j++ {
		a, b, c := rotateIn(din[j], din[4+j], din[8+j])
		w, ok := SPBoxExactDP(a, b, c, target[j], target[4+j], target[8+j])
		if !ok {
			return math.Inf(1), false
		}
		total += w
	}
	return total, true
}

// ExactTrailWeight computes the Equation-2 (Markov) weight of a trail:
// diffs[0] is the input difference and diffs[i] the difference after i
// rounds, starting at round `start` counting down. It returns +Inf,
// false if any transition is impossible. For the unkeyed GIMLI this is
// precisely the quantity Section 2.1 warns may misestimate the true
// probability; compare with EstimateDP.
func ExactTrailWeight(diffs []Delta, start int) (float64, bool) {
	if len(diffs) < 2 {
		return 0, true
	}
	if start > gimli.FullRounds || start-(len(diffs)-1) < 0 {
		panic(fmt.Sprintf("trails: trail of %d rounds does not fit below round %d", len(diffs)-1, start))
	}
	total := 0.0
	for i := 1; i < len(diffs); i++ {
		w, ok := ExactRoundTransitionWeight(diffs[i-1], diffs[i], start-i+1)
		if !ok {
			return math.Inf(1), false
		}
		total += w
	}
	return total, true
}

// GreedyTrail extends din by `rounds` rounds, at each round taking
// every column's minimum-weight SP-box transition and applying the
// linear layer. It returns the full trail (input plus one difference
// per round) and its Equation-2 weight. Greedy search is not optimal
// in general but recovers the optimal weights for 1–3 rounds from the
// constructive trail input, and gives cheap upper bounds elsewhere.
func GreedyTrail(din Delta, start, rounds int) ([]Delta, float64) {
	if rounds < 0 || start > gimli.FullRounds || start-rounds < 0 {
		panic(fmt.Sprintf("trails: invalid greedy window start=%d rounds=%d", start, rounds))
	}
	trail := []Delta{din}
	total := 0.0
	cur := din
	for r := start; r > start-rounds; r-- {
		var next Delta
		for j := 0; j < 4; j++ {
			a, b, c := rotateIn(cur[j], cur[4+j], cur[8+j])
			w, d0, d1, d2 := SPBoxBestTransition(a, b, c)
			total += w
			next[j], next[4+j], next[8+j] = d0, d1, d2
		}
		// Apply the linear layer (swaps only; constants cancel).
		next = undoLinearLayer(next, r) // involution: forward == undo
		trail = append(trail, next)
		cur = next
	}
	return trail, total
}
