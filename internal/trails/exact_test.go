package trails

import (
	"math"
	"testing"

	"repro/internal/gimli"
	"repro/internal/prng"
)

func TestSPBoxExactDPZeroDiff(t *testing.T) {
	// Zero input difference maps to zero output difference with
	// probability 1 and everything else is impossible.
	w, ok := SPBoxExactDP(0, 0, 0, 0, 0, 0)
	if !ok || w != 0 {
		t.Fatalf("zero transition weight %v ok=%v", w, ok)
	}
	if _, ok := SPBoxExactDP(0, 0, 0, 1, 0, 0); ok {
		t.Fatal("zero → nonzero transition possible")
	}
}

func TestSPBoxExactDPMatchesSampling(t *testing.T) {
	// For random sparse input differences, the exact DP of an observed
	// transition must match its sampled frequency.
	r := prng.New(1)
	for trial := 0; trial < 10; trial++ {
		a := uint32(1) << r.Intn(32)
		b := uint32(0)
		c := uint32(1) << r.Intn(32)

		// Sample the transition distribution.
		counts := map[[3]uint32]int{}
		const n = 20000
		for i := 0; i < n; i++ {
			x, y, z := r.Uint32(), r.Uint32(), r.Uint32()
			// Convert rotated coords back to state coords for SPBox.
			n0a, n1a, n2a := gimli.SPBox(rotr(x, 24), rotr(y, 9), z)
			n0b, n1b, n2b := gimli.SPBox(rotr(x^a, 24), rotr(y^b, 9), z^c)
			counts[[3]uint32{n0a ^ n0b, n1a ^ n1b, n2a ^ n2b}]++
		}
		checked := 0
		for diff, cnt := range counts {
			if cnt < 500 { // only well-estimated transitions
				continue
			}
			w, ok := SPBoxExactDP(a, b, c, diff[0], diff[1], diff[2])
			if !ok {
				t.Fatalf("observed transition declared impossible (diff %x)", diff)
			}
			freq := float64(cnt) / n
			exact := math.Exp2(-w)
			if math.Abs(freq-exact)/exact > 0.15 {
				t.Fatalf("trial %d: exact 2^-%v vs sampled %v", trial, w, freq)
			}
			checked++
		}
		if checked == 0 {
			t.Fatalf("trial %d: no transition estimated with confidence", trial)
		}
	}
}

func rotr(v uint32, k uint) uint32 { return v>>k | v<<(32-k) }

func TestSPBoxExactDPImpossibleDetected(t *testing.T) {
	// A single-bit input difference cannot produce arbitrary dense
	// output differences: find one impossible case.
	a, b, c := uint32(1), uint32(0), uint32(0)
	if _, ok := SPBoxExactDP(a, b, c, 0xffffffff, 0xffffffff, 0xffffffff); ok {
		t.Fatal("dense output from single-bit input declared possible")
	}
}

func TestSPBoxBestTransitionConsistent(t *testing.T) {
	// The canonical best output must be reachable with exactly the
	// reported weight.
	r := prng.New(2)
	for trial := 0; trial < 20; trial++ {
		a, b, c := r.Uint32()&0xf, r.Uint32()&0xf, r.Uint32()&0xf
		w, d0, d1, d2 := SPBoxBestTransition(a, b, c)
		w2, ok := SPBoxExactDP(a, b, c, d0, d1, d2)
		if !ok || w2 != w {
			t.Fatalf("best transition self-inconsistent: %v vs %v (ok=%v)", w, w2, ok)
		}
	}
}

// TestExactTrailWeightConstructive proves the Table 1 rows exactly:
// the constructive trail has Equation-2 weight 0 over rounds 1–2 and
// weight 2 over round 3.
func TestExactTrailWeightConstructive(t *testing.T) {
	w, ok := ExactRoundTransitionWeight(TwoRoundTrailInput, OneRoundTrailOutput, 24)
	if !ok || w != 0 {
		t.Fatalf("round-24 transition weight %v ok=%v, want exactly 0", w, ok)
	}
	w, ok = ExactRoundTransitionWeight(OneRoundTrailOutput, TwoRoundTrailOutput, 23)
	if !ok || w != 0 {
		t.Fatalf("round-23 transition weight %v ok=%v, want exactly 0", w, ok)
	}
	w, ok = ExactRoundTransitionWeight(TwoRoundTrailOutput, ThreeRoundTrailOutput, 22)
	if !ok || w != 2 {
		t.Fatalf("round-22 transition weight %v ok=%v, want exactly 2", w, ok)
	}

	full, ok := ExactTrailWeight([]Delta{
		TwoRoundTrailInput, OneRoundTrailOutput, TwoRoundTrailOutput, ThreeRoundTrailOutput,
	}, 24)
	if !ok || full != 2 {
		t.Fatalf("3-round trail weight %v ok=%v, want exactly 2", full, ok)
	}
}

func TestExactTrailWeightImpossible(t *testing.T) {
	bad := TwoRoundTrailOutput
	bad[5] ^= 1
	if w, ok := ExactTrailWeight([]Delta{TwoRoundTrailInput, OneRoundTrailOutput, bad}, 24); ok || !math.IsInf(w, 1) {
		t.Fatalf("impossible trail got weight %v ok=%v", w, ok)
	}
}

func TestExactTrailWeightDegenerate(t *testing.T) {
	if w, ok := ExactTrailWeight([]Delta{TwoRoundTrailInput}, 24); !ok || w != 0 {
		t.Fatal("single-point trail should be weight 0")
	}
}

// TestGreedyTrailRecoversOptimal: greedy extension of the constructive
// input reproduces the Table 1 weights for 1–3 rounds.
func TestGreedyTrailRecoversOptimal(t *testing.T) {
	for rounds, want := range map[int]float64{1: 0, 2: 0, 3: 2} {
		trail, w := GreedyTrail(TwoRoundTrailInput, 24, rounds)
		if len(trail) != rounds+1 {
			t.Fatalf("greedy trail has %d points for %d rounds", len(trail), rounds)
		}
		if w != want {
			t.Fatalf("greedy %d-round weight %v, want %v", rounds, w, want)
		}
	}
}

// TestGreedyTrailMatchesEmpirical: the greedy 3-round trail's
// Equation-2 weight agrees with the Monte-Carlo probability here
// (for this trail the conditions are state-independent across rounds,
// so Markov happens to be exact — the contrast case is the GIFT toy
// cipher, where it is not).
func TestGreedyTrailMatchesEmpirical(t *testing.T) {
	trail, w := GreedyTrail(TwoRoundTrailInput, 24, 3)
	r := prng.New(3)
	p := EstimateDP(trail[0], trail[3], 3, 20000, r)
	if math.Abs(p-math.Exp2(-w)) > 0.01 {
		t.Fatalf("greedy trail: Markov 2^-%v vs empirical %v", w, p)
	}
}

// TestGreedyUpperBoundsTable1: greedy weights are valid upper bounds
// on the optimal weights of Table 1 for 4–5 rounds (greedy ≥ optimal).
func TestGreedyUpperBoundsTable1(t *testing.T) {
	for _, rounds := range []int{4, 5} {
		_, w := GreedyTrail(TwoRoundTrailInput, 24, rounds)
		opt, _ := OptimalWeight(rounds)
		if w < float64(opt) {
			t.Fatalf("greedy %d-round weight %v below the optimal %d — impossible", rounds, w, opt)
		}
	}
}

func TestGreedyTrailValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid window accepted")
		}
	}()
	GreedyTrail(TwoRoundTrailInput, 24, 25)
}

func TestExactRoundTransitionRespectsSwaps(t *testing.T) {
	// The round-24 transition includes a small swap. Presenting the
	// unswapped output must fail for a diff with an active s0 word.
	din := Delta{0: 1 << 7, 4: 1 << 22, 8: 1 << 31, 1: 1 << 7, 5: 1 << 22, 9: 1 << 31}
	// Columns 0 and 1 active: after the SP-box both have Δs2 = bit31
	// only (s0/s1 inactive), so the swap is invisible — build a case
	// with active s0 instead: use the 2-round output at round 22 (big
	// swap), where Δs0 is active.
	_ = din
	// At round 22, input Δs2 bit31 col 0 → SP-box output Δs0 bit31
	// col 0 → big swap moves it to col 2.
	in := Delta{8: 1 << 31}
	swapped := Delta{2: 1 << 31}   // correct: after big swap
	unswapped := Delta{0: 1 << 31} // wrong: forgot the swap
	if w, ok := ExactRoundTransitionWeight(in, swapped, 22); !ok || w != 0 {
		t.Fatalf("swapped output rejected (w=%v ok=%v)", w, ok)
	}
	if _, ok := ExactRoundTransitionWeight(in, unswapped, 22); ok {
		t.Fatal("unswapped output accepted at a big-swap round")
	}
}

func BenchmarkSPBoxExactDP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		SPBoxExactDP(1<<23, 0, 0, 0, 1<<23, 1<<23)
	}
}
