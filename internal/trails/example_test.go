package trails_test

import (
	"fmt"

	"repro/internal/prng"
	"repro/internal/trails"
)

// The constructive probability-1 two-round trail that verifies the
// weight-0 rows of Table 1.
func ExampleEstimateDP() {
	r := prng.New(1)
	p := trails.EstimateDP(trails.TwoRoundTrailInput, trails.TwoRoundTrailOutput, 2, 1000, r)
	fmt.Println("2-round trail probability:", p)
	// Output:
	// 2-round trail probability: 1
}

// The classical-vs-ML complexity comparison of the paper's headline
// claim.
func ExampleCubeRootClaim() {
	classical, ml, ratio, err := trails.CubeRootClaim(8)
	if err != nil {
		panic(err)
	}
	fmt.Printf("classical 2^%.0f vs ML online 2^%.1f (exponent ratio %.1f ≈ cube root)\n",
		classical, ml, ratio)
	// Output:
	// classical 2^52 vs ML online 2^14.3 (exponent ratio 3.6 ≈ cube root)
}
