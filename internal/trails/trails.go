// Package trails provides classical differential-trail machinery for
// GIMLI: the published optimal trail weights of Table 1, constructive
// low-round trails with machine-checkable probabilities, and Monte-Carlo
// differential-probability estimation.
//
// The paper compares its ML distinguisher against the designers'
// SAT/SMT-derived optimal trails: the best 8-round trail has weight 52,
// so a classical distinguisher needs > 2^52 data, whereas the ML
// distinguisher needs ≈ 2^17.6. We ship the published weights as data
// (re-deriving them would require a SAT solver and is orthogonal to the
// paper) and validate the low-round rows constructively: an explicit
// probability-1 two-round trail and a weight-2 three-round trail are
// constructed below and verified empirically by the tests.
package trails

import (
	"fmt"
	"math"

	"repro/internal/gimli"
	"repro/internal/prng"
)

// Table1Weights are the optimal differential trail weights for 1–8
// rounds of GIMLI from the designers' SAT/SMT search, as quoted in
// Table 1 of the paper. Table1Weights[r-1] is the weight for r rounds.
var Table1Weights = [8]int{0, 0, 2, 6, 12, 22, 36, 52}

// OptimalWeight returns the published optimal trail weight for r rounds
// of GIMLI, r in [1, 8].
func OptimalWeight(r int) (int, error) {
	if r < 1 || r > len(Table1Weights) {
		return 0, fmt.Errorf("trails: no published optimal weight for %d rounds", r)
	}
	return Table1Weights[r-1], nil
}

// ClassicalDataComplexity returns the approximate number of chosen
// plaintext pairs a single-trail distinguisher needs for r rounds:
// 2^weight.
func ClassicalDataComplexity(r int) (float64, error) {
	w, err := OptimalWeight(r)
	if err != nil {
		return 0, err
	}
	return math.Exp2(float64(w)), nil
}

// Delta is a 384-bit GIMLI state difference.
type Delta = gimli.State

// TwoRoundTrailInput is the input difference of an explicit
// probability-1 two-round trail (per column 0):
//
//	Δs0 = bit 7, Δs1 = bit 22, Δs2 = bit 31.
//
// After the SP-box rotations these all sit in bit 31 of x, y, z, where
// every nonlinear contribution is shifted out of the word and the
// linear contributions cancel: round 1 maps it deterministically to
// Δs2 = bit 31, and round 2 maps that to Δs0 = bit 31. This is a
// constructive witness for the weight-0 rows of Table 1.
var TwoRoundTrailInput = Delta{
	0: 1 << 7,
	4: 1 << 22,
	8: 1 << 31,
}

// TwoRoundTrailOutput is the deterministic output difference of the
// two-round trail when started at round 24 (Δs0 = bit 31 of column 0;
// the round-24 small swap moves a zero word, so column 0 is preserved).
var TwoRoundTrailOutput = Delta{
	0: 1 << 31,
}

// OneRoundTrailOutput is the difference after the first round of the
// two-round trail: Δs2 = bit 31 of column 0.
var OneRoundTrailOutput = Delta{
	8: 1 << 31,
}

// ThreeRoundTrailWeight is the weight of the best continuation of the
// two-round trail by one round: the surviving Δs0 = bit 31 difference
// enters round 22 as x bit 23, whose two nonlinear contributions
// ((x|z)≪1 and (x&y)≪3) each propagate or not depending on one state
// bit — a 2^−2 trail, matching the Table 1 weight for three rounds.
const ThreeRoundTrailWeight = 2

// ThreeRoundTrailOutput is the most likely three-round output
// difference: the round-22 transition in which neither nonlinear term
// propagates (z23 = 1 blocks (x|z)≪1, y23 = 0 blocks (x&y)≪3),
// leaving only the linear x contributions, Δn1 = Δn2 = bit 23 in
// column 0. Δs0 is zero, so the round-22 big swap moves nothing.
var ThreeRoundTrailOutput = Delta{
	4: 1 << 23, // s1 column 0
	8: 1 << 23, // s2 column 0
}

// EstimateDP estimates the differential probability
// Pr[P_n(x) ⊕ P_n(x ⊕ din) = dout] for n rounds of GIMLI starting at
// round 24, over samples random states.
func EstimateDP(din, dout Delta, rounds, samples int, r *prng.Rand) float64 {
	hits := 0
	for i := 0; i < samples; i++ {
		var s gimli.State
		for w := range s {
			s[w] = r.Uint32()
		}
		s2 := s
		for w := range s2 {
			s2[w] ^= din[w]
		}
		gimli.PermuteRounds(&s, rounds)
		gimli.PermuteRounds(&s2, rounds)
		match := true
		for w := range s {
			if s[w]^s2[w] != dout[w] {
				match = false
				break
			}
		}
		if match {
			hits++
		}
	}
	return float64(hits) / float64(samples)
}

// BestObservedDiff samples the output-difference distribution for din
// over n rounds and returns the most frequent output difference with
// its empirical probability — a lower bound on the best differential
// (not trail) probability from din.
func BestObservedDiff(din Delta, rounds, samples int, r *prng.Rand) (Delta, float64) {
	counts := make(map[Delta]int)
	for i := 0; i < samples; i++ {
		var s gimli.State
		for w := range s {
			s[w] = r.Uint32()
		}
		s2 := s
		for w := range s2 {
			s2[w] ^= din[w]
		}
		gimli.PermuteRounds(&s, rounds)
		gimli.PermuteRounds(&s2, rounds)
		var d Delta
		for w := range s {
			d[w] = s[w] ^ s2[w]
		}
		counts[d]++
	}
	var best Delta
	bestN := -1
	for d, n := range counts {
		if n > bestN || (n == bestN && less(d, best)) {
			best, bestN = d, n
		}
	}
	return best, float64(bestN) / float64(samples)
}

func less(a, b Delta) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// MLDataComplexity is the distinguishing data complexity reported by
// the paper for its 8-round ML distinguisher.
type MLDataComplexity struct {
	OfflineLog2 float64 // log2 of training data: 17.6
	OnlineLog2  float64 // log2 of online queries: 14.3
}

// PaperComplexity returns the paper's reported 8-round complexities.
func PaperComplexity() MLDataComplexity {
	return MLDataComplexity{OfflineLog2: 17.6, OnlineLog2: 14.3}
}

// CubeRootClaim quantifies the paper's "around cube root" comparison
// for r rounds: the ratio of the classical trail weight to the ML
// online complexity exponent.
func CubeRootClaim(r int) (classicalLog2, mlLog2, ratio float64, err error) {
	w, err := OptimalWeight(r)
	if err != nil {
		return 0, 0, 0, err
	}
	ml := PaperComplexity().OnlineLog2
	return float64(w), ml, float64(w) / ml, nil
}
