package trails

import (
	"math"
	"testing"

	"repro/internal/prng"
)

func TestTable1WeightsData(t *testing.T) {
	want := []int{0, 0, 2, 6, 12, 22, 36, 52}
	for i, w := range want {
		got, err := OptimalWeight(i + 1)
		if err != nil || got != w {
			t.Errorf("OptimalWeight(%d) = %d, %v; want %d", i+1, got, err, w)
		}
	}
	if _, err := OptimalWeight(0); err == nil {
		t.Error("OptimalWeight(0) accepted")
	}
	if _, err := OptimalWeight(9); err == nil {
		t.Error("OptimalWeight(9) accepted")
	}
}

func TestWeightsMonotone(t *testing.T) {
	for r := 2; r <= 8; r++ {
		a, _ := OptimalWeight(r - 1)
		b, _ := OptimalWeight(r)
		if b < a {
			t.Errorf("weights not monotone at %d rounds: %d < %d", r, b, a)
		}
	}
}

func TestClassicalDataComplexity(t *testing.T) {
	c, err := ClassicalDataComplexity(8)
	if err != nil {
		t.Fatal(err)
	}
	if c != math.Exp2(52) {
		t.Errorf("8-round complexity = %v, want 2^52", c)
	}
}

// TestOneRoundTrailDeterministic verifies the first step of the
// constructive trail: probability exactly 1 over random states.
func TestOneRoundTrailDeterministic(t *testing.T) {
	r := prng.New(1)
	p := EstimateDP(TwoRoundTrailInput, OneRoundTrailOutput, 1, 2000, r)
	if p != 1 {
		t.Fatalf("1-round trail probability = %v, want 1 (Table 1 weight 0)", p)
	}
}

// TestTwoRoundTrailDeterministic verifies the weight-0 row for 2 rounds
// of Table 1 constructively.
func TestTwoRoundTrailDeterministic(t *testing.T) {
	r := prng.New(2)
	p := EstimateDP(TwoRoundTrailInput, TwoRoundTrailOutput, 2, 2000, r)
	if p != 1 {
		t.Fatalf("2-round trail probability = %v, want 1 (Table 1 weight 0)", p)
	}
}

// TestThreeRoundTrailWeight2 verifies the weight-2 row of Table 1: the
// best continuation of the deterministic trail holds with probability
// 2^-2 (two independent single-bit conditions).
func TestThreeRoundTrailWeight2(t *testing.T) {
	r := prng.New(3)
	const n = 20000
	p := EstimateDP(TwoRoundTrailInput, ThreeRoundTrailOutput, 3, n, r)
	// 3 sigma of a Bernoulli(1/4) over 20000 samples ≈ 0.0092.
	if math.Abs(p-0.25) > 0.01 {
		t.Fatalf("3-round trail probability = %v, want ≈ 0.25 (weight 2)", p)
	}
}

// TestBestObservedDiffFindsTrail: the sampler should rediscover the
// deterministic 2-round output difference on its own.
func TestBestObservedDiffFindsTrail(t *testing.T) {
	r := prng.New(4)
	best, p := BestObservedDiff(TwoRoundTrailInput, 2, 500, r)
	if best != TwoRoundTrailOutput {
		t.Fatalf("best 2-round diff = %x, want the trail output", best)
	}
	if p != 1 {
		t.Fatalf("best 2-round diff probability = %v, want 1", p)
	}
}

// TestFourRoundConsistency: extending our input by four rounds must
// yield a best differential at least as probable as 2^-7 — consistent
// with (and lower-bounding) the Table 1 weight-6 optimal trail region.
func TestFourRoundConsistency(t *testing.T) {
	r := prng.New(5)
	_, p := BestObservedDiff(TwoRoundTrailInput, 4, 60000, r)
	if p < math.Exp2(-7) {
		t.Fatalf("best observed 4-round differential probability %v (2^%.2f) below 2^-7",
			p, math.Log2(p))
	}
}

// TestRandomDiffDoesNotFollowTrail: a wrong output difference has
// probability ≈ 0.
func TestRandomDiffDoesNotFollowTrail(t *testing.T) {
	r := prng.New(6)
	wrong := TwoRoundTrailOutput
	wrong[5] ^= 1 // perturb a word the trail says is inactive
	p := EstimateDP(TwoRoundTrailInput, wrong, 2, 2000, r)
	if p != 0 {
		t.Fatalf("wrong output difference had probability %v", p)
	}
}

func TestCubeRootClaim(t *testing.T) {
	classical, ml, ratio, err := CubeRootClaim(8)
	if err != nil {
		t.Fatal(err)
	}
	if classical != 52 || ml != 14.3 {
		t.Fatalf("CubeRootClaim(8) = (%v, %v)", classical, ml)
	}
	// "around cube root": the exponent ratio should be near 3.
	if ratio < 2.5 || ratio > 4.5 {
		t.Fatalf("exponent ratio %v not 'around cube root'", ratio)
	}
	if _, _, _, err := CubeRootClaim(99); err == nil {
		t.Error("CubeRootClaim(99) accepted")
	}
}

func TestPaperComplexity(t *testing.T) {
	c := PaperComplexity()
	if c.OfflineLog2 != 17.6 || c.OnlineLog2 != 14.3 {
		t.Fatalf("PaperComplexity = %+v", c)
	}
}

func BenchmarkEstimateDP2Rounds(b *testing.B) {
	r := prng.New(1)
	for i := 0; i < b.N; i++ {
		EstimateDP(TwoRoundTrailInput, TwoRoundTrailOutput, 2, 100, r)
	}
}
