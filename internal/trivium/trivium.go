// Package trivium implements the Trivium stream cipher (De Cannière &
// Preneel, eSTREAM), the second non-Markov example of Section 2.1 of
// the paper. The cipher's 288-bit state is warmed up for 4·288 = 1152
// clocks before keystream is emitted; the standard way to study its
// differential behaviour — and our distinguisher scenario — is to
// reduce this initialization clock count and classify keystream-prefix
// differences under chosen IV differences.
package trivium

import "fmt"

// KeyBytes is the key length (80 bits).
const KeyBytes = 10

// IVBytes is the IV length (80 bits).
const IVBytes = 10

// FullInitClocks is the full initialization of 4 × 288 clocks.
const FullInitClocks = 1152

// Cipher is a Trivium instance. The state is stored as 288 booleans
// s[0] … s[287] corresponding to the specification's s1 … s288 —
// clarity over speed, which is ample for distinguisher workloads.
type Cipher struct {
	s [288]bool
}

// New initializes a Trivium instance with the given key and IV and
// runs initClocks warm-up clocks (FullInitClocks for the real cipher).
// Bit i of key/iv byte b is taken LSB-first: key bit 8b+i = key[b]>>i.
func New(key, iv []byte, initClocks int) (*Cipher, error) {
	if len(key) != KeyBytes {
		return nil, fmt.Errorf("trivium: key must be %d bytes, got %d", KeyBytes, len(key))
	}
	if len(iv) != IVBytes {
		return nil, fmt.Errorf("trivium: IV must be %d bytes, got %d", IVBytes, len(iv))
	}
	if initClocks < 0 || initClocks > FullInitClocks {
		return nil, fmt.Errorf("trivium: init clocks must be in [0, %d], got %d", FullInitClocks, initClocks)
	}
	c := &Cipher{}
	// (s1 … s93)   ← (K1 … K80, 0 … 0)
	for i := 0; i < 80; i++ {
		c.s[i] = key[i/8]>>(i%8)&1 == 1
	}
	// (s94 … s177) ← (IV1 … IV80, 0 … 0)
	for i := 0; i < 80; i++ {
		c.s[93+i] = iv[i/8]>>(i%8)&1 == 1
	}
	// (s178 … s288) ← (0 … 0, 1, 1, 1)
	c.s[285], c.s[286], c.s[287] = true, true, true
	for i := 0; i < initClocks; i++ {
		c.clock() // warm-up: the output bit is simply not emitted
	}
	return c, nil
}

// clock advances the state by one step and returns the output bit,
// which is the keystream bit once initialization is over.
func (c *Cipher) clock() bool {
	s := &c.s
	t1 := s[65] != s[92]   // s66 ⊕ s93
	t2 := s[161] != s[176] // s162 ⊕ s177
	t3 := s[242] != s[287] // s243 ⊕ s288
	z := t1 != (t2 != t3)

	t1 = t1 != (s[90] && s[91]) != s[170]   // ⊕ s91·s92 ⊕ s171
	t2 = t2 != (s[174] && s[175]) != s[263] // ⊕ s175·s176 ⊕ s264
	t3 = t3 != (s[285] && s[286]) != s[68]  // ⊕ s286·s287 ⊕ s69

	// Shift the three registers: A = s1..s93, B = s94..s177,
	// C = s178..s288.
	copy(s[1:93], s[0:92])
	copy(s[94:177], s[93:176])
	copy(s[178:288], s[177:287])
	s[0] = t3
	s[93] = t1
	s[177] = t2
	return z
}

// KeystreamBit returns the next keystream bit.
func (c *Cipher) KeystreamBit() bool { return c.clock() }

// Keystream fills out with the next 8·len(out) keystream bits,
// LSB-first within each byte.
func (c *Cipher) Keystream(out []byte) {
	for i := range out {
		var b byte
		for k := 0; k < 8; k++ {
			if c.clock() {
				b |= 1 << k
			}
		}
		out[i] = b
	}
}

// Prefix is a convenience: initialize with (key, iv, initClocks) and
// return the first n keystream bytes.
func Prefix(key, iv []byte, initClocks, n int) ([]byte, error) {
	c, err := New(key, iv, initClocks)
	if err != nil {
		return nil, err
	}
	out := make([]byte, n)
	c.Keystream(out)
	return out, nil
}
