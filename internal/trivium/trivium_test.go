package trivium

import (
	"testing"

	"repro/internal/bits"
	"repro/internal/prng"
)

func TestValidation(t *testing.T) {
	key := make([]byte, KeyBytes)
	iv := make([]byte, IVBytes)
	if _, err := New(key[:9], iv, FullInitClocks); err == nil {
		t.Error("short key accepted")
	}
	if _, err := New(key, iv[:9], FullInitClocks); err == nil {
		t.Error("short IV accepted")
	}
	if _, err := New(key, iv, -1); err == nil {
		t.Error("negative init clocks accepted")
	}
	if _, err := New(key, iv, FullInitClocks+1); err == nil {
		t.Error("oversized init clocks accepted")
	}
}

func TestDeterminism(t *testing.T) {
	key := make([]byte, KeyBytes)
	iv := make([]byte, IVBytes)
	key[0] = 0x80
	a, err := Prefix(key, iv, FullInitClocks, 16)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Prefix(key, iv, FullInitClocks, 16)
	if !bits.Equal(a, b) {
		t.Fatal("keystream not deterministic")
	}
}

func TestKeySensitivity(t *testing.T) {
	key := make([]byte, KeyBytes)
	iv := make([]byte, IVBytes)
	a, _ := Prefix(key, iv, FullInitClocks, 16)
	key[3] ^= 1
	b, _ := Prefix(key, iv, FullInitClocks, 16)
	if bits.Equal(a, b) {
		t.Fatal("key bit flip invisible in keystream")
	}
}

func TestIVSensitivity(t *testing.T) {
	key := make([]byte, KeyBytes)
	iv := make([]byte, IVBytes)
	a, _ := Prefix(key, iv, FullInitClocks, 16)
	iv[7] ^= 1
	b, _ := Prefix(key, iv, FullInitClocks, 16)
	if bits.Equal(a, b) {
		t.Fatal("IV bit flip invisible in keystream")
	}
}

func TestKeystreamBalanced(t *testing.T) {
	// Full-init keystream bits should be balanced across random keys.
	r := prng.New(1)
	ones, total := 0, 0
	for trial := 0; trial < 50; trial++ {
		ks, err := Prefix(r.Bytes(KeyBytes), r.Bytes(IVBytes), FullInitClocks, 32)
		if err != nil {
			t.Fatal(err)
		}
		ones += bits.PopCount(ks)
		total += len(ks) * 8
	}
	frac := float64(ones) / float64(total)
	if frac < 0.47 || frac > 0.53 {
		t.Fatalf("keystream bit fraction %.4f", frac)
	}
}

func TestReducedInitIsBiased(t *testing.T) {
	// With drastically reduced initialization, an IV difference leaves
	// a non-random keystream difference — the distinguisher surface.
	// At 288 clocks (a quarter of the warm-up) the first keystream
	// bits still correlate strongly between IV-neighbour pairs.
	r := prng.New(2)
	const clocks = 288
	const trials = 300
	weight := 0
	for i := 0; i < trials; i++ {
		key := r.Bytes(KeyBytes)
		iv := r.Bytes(IVBytes)
		a, err := Prefix(key, iv, clocks, 8)
		if err != nil {
			t.Fatal(err)
		}
		iv[0] ^= 1
		b, _ := Prefix(key, iv, clocks, 8)
		weight += bits.HammingDistance(a, b)
	}
	mean := float64(weight) / trials // of 64 bits
	if mean > 28 {
		t.Fatalf("reduced-init keystream difference too random: mean weight %.1f of 64", mean)
	}
}

func TestFullInitLooksRandom(t *testing.T) {
	// Negative control: after the full 1152 clocks the same IV
	// difference produces ≈ balanced keystream differences.
	r := prng.New(3)
	const trials = 300
	weight := 0
	for i := 0; i < trials; i++ {
		key := r.Bytes(KeyBytes)
		iv := r.Bytes(IVBytes)
		a, _ := Prefix(key, iv, FullInitClocks, 8)
		iv[0] ^= 1
		b, _ := Prefix(key, iv, FullInitClocks, 8)
		weight += bits.HammingDistance(a, b)
	}
	mean := float64(weight) / trials
	if mean < 28 || mean > 36 {
		t.Fatalf("full-init difference weight %.1f of 64, want ≈ 32", mean)
	}
}

func TestKeystreamBitMatchesKeystream(t *testing.T) {
	key := make([]byte, KeyBytes)
	iv := make([]byte, IVBytes)
	key[0] = 1
	c1, _ := New(key, iv, FullInitClocks)
	c2, _ := New(key, iv, FullInitClocks)
	buf := make([]byte, 4)
	c1.Keystream(buf)
	for i := 0; i < 32; i++ {
		bit := c2.KeystreamBit()
		want := buf[i/8]>>(i%8)&1 == 1
		if bit != want {
			t.Fatalf("bit %d mismatch", i)
		}
	}
}

func BenchmarkInitFull(b *testing.B) {
	key := make([]byte, KeyBytes)
	iv := make([]byte, IVBytes)
	for i := 0; i < b.N; i++ {
		_, _ = New(key, iv, FullInitClocks)
	}
}

func BenchmarkKeystreamByte(b *testing.B) {
	c, _ := New(make([]byte, KeyBytes), make([]byte, IVBytes), FullInitClocks)
	buf := make([]byte, 1)
	b.SetBytes(1)
	for i := 0; i < b.N; i++ {
		c.Keystream(buf)
	}
}
