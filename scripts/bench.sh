#!/usr/bin/env bash
# Performance-tracking harness: runs the hot-path benchmarks (training
# engine, dataset generation, batched inference, matrix kernels) with
# -benchmem, snapshots the results as BENCH_<date>.json via
# cmd/benchdiff, and prints the drift against the most recent previous
# snapshot. Committed BENCH_*.json files form the repo's performance
# trajectory.
#
# Each benchmark runs -count times (default 3); cmd/benchdiff folds the
# repeats to the minimum ns/op — the least-noise estimate on a shared
# box — and the maximum B/op and allocs/op. A second pass re-runs the
# parallel-sensitive benchmarks (training engine, dataset generation)
# at GOMAXPROCS=BENCH_MP so the snapshot also tracks scaling; go test
# suffixes those names with -N, so they land as separate entries.
#
# Environment knobs:
#   BENCH_DATE=YYYYMMDD  snapshot stamp (default: today)
#   BENCH_TIME=<n>x|<t>s benchtime passed to go test (default 1s —
#                        fixed tiny iteration counts quantize the
#                        ns-scale kernel benchmarks and skew per-op
#                        allocation amortization, making snapshots
#                        incomparable; use 3x only for a quick
#                        uncommitted look)
#   BENCH_COUNT=<n>      repeats per benchmark (default 3)
#   BENCH_MP=<n>         GOMAXPROCS for the scaling pass (default 4;
#                        0 skips the pass)
set -euo pipefail
cd "$(dirname "$0")/.."

DATE="${BENCH_DATE:-$(date +%Y%m%d)}"
STAMP="$DATE"
OUT="BENCH_${STAMP}.json"
# Same-day reruns must not clobber an already-committed snapshot — that
# would silently rewrite the perf trajectory the regression gate replays.
# Suffix repeat runs b..z instead (BENCH_20260808.json, then
# BENCH_20260808b.json, ...), matching the stamps benchdiff derives from
# the filename.
if [[ -e "$OUT" ]]; then
  for s in b c d e f g h i j k l m n o p q r s t u v w x y z; do
    if [[ ! -e "BENCH_${DATE}${s}.json" ]]; then
      STAMP="${DATE}${s}"
      OUT="BENCH_${STAMP}.json"
      break
    fi
  done
  if [[ -e "$OUT" ]]; then
    echo "bench: all snapshot suffixes for ${DATE} are taken; set BENCH_DATE" >&2
    exit 1
  fi
fi
BENCHTIME="${BENCH_TIME:-1s}"
COUNT="${BENCH_COUNT:-3}"
MP="${BENCH_MP:-4}"

# Most recent previous snapshot, if any, for the delta report.
PREV="$(ls BENCH_*.json 2>/dev/null | grep -v "^${OUT}\$" | sort | tail -1 || true)"

TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

# Root package: dataset generation, batched inference, matrix kernels.
# internal/nn: the training engine (BenchmarkFit) and kernel micro-benchmarks.
# internal/prng: the vectorized positional draw kernels feeding the
# sliced dataset path (BenchmarkSeedStream, BenchmarkDrawBatch).
# internal/gimli + internal/speck + internal/simon + internal/simeck +
# internal/chaskey + internal/gift: the scalar, interleaved and ×64
# bitsliced cipher kernels behind the packed dataset fast path.
# internal/serve: the full HTTP classify path through the
# micro-batching scheduler (BenchmarkServeClassify).
# internal/ledger: audit-record append throughput (BenchmarkLedgerAppend).
# internal/cluster: the routed classify path — router handler, HTTP hop
# to a replica, micro-batched inference (BenchmarkRouterClassify).
go test . ./internal/nn/ ./internal/prng/ ./internal/gimli/ ./internal/speck/ ./internal/simon/ \
    ./internal/simeck/ ./internal/chaskey/ ./internal/gift/ ./internal/serve/ \
    ./internal/ledger/ ./internal/cluster/ -run '^$' \
    -bench 'Fit|GenerateDataset|PredictBatch|MatMul|Mul128|PermuteRounds|SpeckEncrypt|SimonEncrypt|SimeckEncrypt|ChaskeyPermute|Gift64Encrypt|ServeClassify|DrawBatch|SeedStream|LedgerAppend|RouterClassify' \
    -benchtime "$BENCHTIME" -benchmem -count "$COUNT" | tee "$TMP"

# Scaling pass: the sharded hot paths again at GOMAXPROCS>1.
if [[ "$MP" != "0" ]]; then
  GOMAXPROCS="$MP" go test . ./internal/nn/ -run '^$' \
      -bench 'Fit$|GenerateDataset' \
      -benchtime "$BENCHTIME" -benchmem -count "$COUNT" | tee -a "$TMP"
fi

go run ./cmd/benchdiff -snapshot "$OUT" -date "$STAMP" < "$TMP"
echo "bench: wrote $OUT"

if [ -n "$PREV" ]; then
    go run ./cmd/benchdiff -compare "$PREV" "$OUT"
else
    echo "bench: no previous BENCH_*.json snapshot; nothing to compare"
fi
