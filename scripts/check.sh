#!/usr/bin/env bash
# Tier-1 verify recipe. The -race passes cover the packages this
# repository's concurrency lives in: the sharded dataset generation
# (internal/core), the goroutine-parallel matrix kernels and the
# data-parallel training engine with its byte-identity regression
# tests (internal/nn), the serving layer's micro-batching scheduler
# plus its lock-free metrics (internal/serve, internal/metrics), and
# the cluster router / audit ledger (internal/cluster,
# internal/ledger). On top of the plain test run this script
# executes:
#
#   - the internal/testkit conformance suite (KATs for all eight
#     primitives — GIMLI, SPECK, GIFT, Salsa, Trivium, SIMON, SIMECK,
#     Chaskey — property runner self-tests, sampled-vs-exact DP
#     cross-validation), uncached so vectors are really re-evaluated;
#   - a fuzz smoke: each native fuzz target runs for FUZZ_SECONDS
#     (default 10s) of random exploration, skippable with CHECK_FUZZ=0
#     for quick local iteration;
#   - a benchmark smoke (one iteration of the training-engine
#     benchmarks) so BenchmarkFit cannot silently rot between full
#     `make bench` runs, skippable with CHECK_BENCH=0;
#   - a coverage gate on internal/core and internal/nn that fails if
#     statement coverage drops below the recorded baselines.
set -euo pipefail
cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go test ./...
go test -race ./internal/nn/... ./internal/core/...
go test -race ./internal/serve ./internal/metrics
go test -race ./internal/cluster ./internal/ledger
go test -race ./internal/simon ./internal/simeck ./internal/chaskey

# --- Conformance suite (testkit): run uncached so KATs re-execute.
go test -count=1 ./internal/testkit/

# --- Fuzz smoke: 10s of random exploration per target. Go only
# supports one -fuzz pattern per invocation, so iterate. -run '^$'
# skips the unit tests already covered above.
FUZZ_SECONDS="${FUZZ_SECONDS:-10}"
if [[ "${CHECK_FUZZ:-1}" != "0" ]]; then
  for target in \
      "./internal/bits FuzzToFloatsRoundTrip" \
      "./internal/bits FuzzHexRoundTrip" \
      "./internal/bits FuzzBitOps" \
      "./internal/prng FuzzDrawBatch" \
      "./internal/nn FuzzLoadArbitraryBytes" \
      "./internal/nn FuzzSaveLoadRoundTrip" \
      "./internal/core FuzzLoadDistinguisher" \
      "./internal/core FuzzLoadDataset" \
      "./internal/core FuzzSimonEncrypt" \
      "./internal/core FuzzSimeckEncrypt" \
      "./internal/core FuzzChaskeyPermute" \
      "./internal/core FuzzGift64Encrypt" \
      "./internal/ledger FuzzLedgerVerify"; do
    set -- $target
    echo "fuzz smoke: $1 $2 (${FUZZ_SECONDS}s)"
    go test "$1" -run '^$' -fuzz "^$2\$" -fuzztime "${FUZZ_SECONDS}s"
  done
fi

# --- Benchmark smoke: one iteration of the training-engine and cipher
# kernel benchmarks keeps them compiling and running; full measurements
# come from `make bench` (scripts/bench.sh). The regression gate then
# replays the two most recent committed BENCH_*.json snapshots through
# benchdiff -max-regress, so a snapshot that records a ns/op regression
# past BENCH_MAX_REGRESS percent (default 100, i.e. >2× slower) cannot
# land silently. Different machines produced different snapshots, hence
# the deliberately loose default; tighten per-run with
# BENCH_MAX_REGRESS=20 ./scripts/check.sh.
if [[ "${CHECK_BENCH:-1}" != "0" ]]; then
  go test ./internal/nn/ -run '^$' -bench Fit -benchtime 1x
  go test ./internal/gimli/ ./internal/speck/ -run '^$' \
      -bench 'PermuteRounds|SpeckEncrypt' -benchtime 1x
  go test ./internal/simon/ ./internal/simeck/ ./internal/chaskey/ ./internal/gift/ -run '^$' \
      -bench 'SimonEncrypt|SimeckEncrypt|ChaskeyPermute|Gift64Encrypt' -benchtime 1x
  go test ./internal/ledger/ ./internal/cluster/ -run '^$' \
      -bench 'LedgerAppend|RouterClassify' -benchtime 1x
  mapfile -t SNAPS < <(ls BENCH_*.json 2>/dev/null | sort | tail -2)
  if [[ "${#SNAPS[@]}" -eq 2 ]]; then
    # Allocation counts of the steady-state kernels are deterministic
    # (unlike wall clock), so the allocs/op gate defaults to zero
    # tolerance: a snapshot recording a new steady-state allocation on
    # any benchmark fails the build. The training-engine benchmarks are
    # exempt from the allocation gate (ns/op gate still applies):
    # goroutine stack growth and GC-coupled lazy state land in their
    # allocs/op differently from run to run and box to box, which is
    # measurement noise, not a leak.
    # BenchmarkRouterClassify shares BenchmarkFit's exemption: it
    # crosses a real HTTP hop twice, so its allocs/op carry connection
    # and goroutine churn that varies run to run.
    go run ./cmd/benchdiff -compare -max-regress "${BENCH_MAX_REGRESS:-100}" \
        -max-alloc-regress "${BENCH_MAX_ALLOC_REGRESS:-0}" \
        -alloc-exempt '^BenchmarkFit|^BenchmarkRouterClassify' \
        "${SNAPS[0]}" "${SNAPS[1]}"
  fi
fi

# --- Coverage gate: seed baselines, measured at the PR that introduced
# the gate. Raising coverage moves the floor up in the same commit;
# dropping below it fails the build.
check_cover() {
  local pkg="$1" floor="$2"
  local pct
  pct=$(go test -count=1 -cover "$pkg" | grep -o 'coverage: [0-9.]*%' | grep -o '[0-9.]*')
  if [[ -z "$pct" ]]; then
    echo "coverage gate: could not measure $pkg" >&2
    return 1
  fi
  awk -v p="$pct" -v f="$floor" 'BEGIN { exit !(p+0 < f+0) }' && {
    echo "coverage gate: $pkg at ${pct}% is below the ${floor}% floor" >&2
    return 1
  }
  echo "coverage gate: $pkg ${pct}% (floor ${floor}%)"
}
check_cover ./internal/core    95.0
check_cover ./internal/prng    94.0
check_cover ./internal/nn      93.7
check_cover ./internal/serve   85.0
check_cover ./internal/metrics 90.0
check_cover ./internal/cluster 85.0
check_cover ./internal/ledger  85.0
check_cover ./internal/simon   100.0
check_cover ./internal/simeck  100.0
check_cover ./internal/chaskey 100.0

echo "check.sh: all gates passed"
